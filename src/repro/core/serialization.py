"""Wire serialisation of collections and classifications.

The paper's setting — "sensor networks use lightweight nodes with minimal
hardware" — makes message size a first-class concern, and its related-work
section argues that this algorithm's messages depend only on the dataset
parameters (``k``, the value dimension), never on the network size ``n``.
To make that claim *measurable* rather than rhetorical, this module
provides a compact binary wire format for message payloads:

- a :class:`SummaryCodec` per summary type (centroid vectors, weighted
  Gaussians, histograms), each a fixed-size struct-packed record;
- :func:`encode_payload` / :func:`decode_payload` for whole messages
  (lists of collections, as produced by ``make_message``).

The benchmark ``test_ablation_message_size`` serialises real payloads at
several network sizes and checks the byte counts are identical — the
paper's independence claim, in bytes.

Auxiliary mixture vectors are deliberately *not* serialised: they are
proof/measurement machinery of size O(n), exactly what a real deployment
would never ship.
"""

from __future__ import annotations

import abc
import struct
from typing import Any, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.obs.profiling import span

__all__ = [
    "SummaryCodec",
    "CentroidCodec",
    "DiagonalGaussianCodec",
    "GaussianCodec",
    "HistogramCodec",
    "encode_payload",
    "decode_payload",
    "payload_size_bytes",
    "codec_for_scheme",
]

#: Wire format version, first byte of every message.
_WIRE_VERSION = 1

#: Header: version (B), codec id (B), collection count (H).
_HEADER = struct.Struct("!BBH")

#: Per-collection prefix: weight in quanta (Q = unsigned 64-bit).
_WEIGHT = struct.Struct("!Q")


class SummaryCodec(abc.ABC):
    """Binary codec for one summary type.

    Codecs are *fixed-size*: every summary of a given scheme configuration
    encodes to the same number of bytes, which is what makes message sizes
    predictable (and checkable) on constrained radios.
    """

    #: One-byte identifier written into the message header.
    codec_id: int

    @abc.abstractmethod
    def summary_size(self) -> int:
        """Encoded size of one summary, in bytes."""

    @abc.abstractmethod
    def encode_summary(self, summary: Any) -> bytes:
        """Serialise one summary to exactly ``summary_size()`` bytes."""

    @abc.abstractmethod
    def decode_summary(self, blob: bytes) -> Any:
        """Inverse of :meth:`encode_summary`."""


class CentroidCodec(SummaryCodec):
    """Centroid summaries: ``d`` float64s."""

    codec_id = 1

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension

    def summary_size(self) -> int:
        return 8 * self.dimension

    def encode_summary(self, summary: Any) -> bytes:
        array = np.asarray(summary, dtype=">f8")
        if array.shape != (self.dimension,):
            raise ValueError(
                f"centroid has shape {array.shape}, codec expects ({self.dimension},)"
            )
        return array.tobytes()

    def decode_summary(self, blob: bytes) -> np.ndarray:
        return np.frombuffer(blob, dtype=">f8").astype(float)


class GaussianCodec(SummaryCodec):
    """Weighted-Gaussian summaries: mean (d floats) + the upper triangle
    of the symmetric covariance (d(d+1)/2 floats)."""

    codec_id = 2

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self._triangle = [(i, j) for i in range(dimension) for j in range(i, dimension)]

    def summary_size(self) -> int:
        return 8 * (self.dimension + len(self._triangle))

    def encode_summary(self, summary: Any) -> bytes:
        from repro.schemes.gaussian import GaussianSummary

        if not isinstance(summary, GaussianSummary):
            raise TypeError(f"expected GaussianSummary, got {type(summary).__name__}")
        if summary.dimension != self.dimension:
            raise ValueError(
                f"summary dimension {summary.dimension} != codec dimension {self.dimension}"
            )
        upper = np.array([summary.cov[i, j] for i, j in self._triangle])
        return np.concatenate([summary.mean, upper]).astype(">f8").tobytes()

    def decode_summary(self, blob: bytes) -> Any:
        from repro.schemes.gaussian import GaussianSummary

        flat = np.frombuffer(blob, dtype=">f8").astype(float)
        mean = flat[: self.dimension]
        cov = np.zeros((self.dimension, self.dimension))
        for value, (i, j) in zip(flat[self.dimension :], self._triangle):
            cov[i, j] = value
            cov[j, i] = value
        return GaussianSummary(mean=mean, cov=cov)


class DiagonalGaussianCodec(SummaryCodec):
    """Diagonal-Gaussian summaries: mean (d floats) + d variances.

    The lightweight-sensor wire format: O(d) instead of O(d^2) per
    collection (see :mod:`repro.schemes.diagonal`).
    """

    codec_id = 4

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension

    def summary_size(self) -> int:
        return 8 * 2 * self.dimension

    def encode_summary(self, summary: Any) -> bytes:
        from repro.schemes.gaussian import GaussianSummary

        if not isinstance(summary, GaussianSummary):
            raise TypeError(f"expected GaussianSummary, got {type(summary).__name__}")
        if summary.dimension != self.dimension:
            raise ValueError(
                f"summary dimension {summary.dimension} != codec dimension {self.dimension}"
            )
        variances = np.diag(summary.cov)
        return np.concatenate([summary.mean, variances]).astype(">f8").tobytes()

    def decode_summary(self, blob: bytes) -> Any:
        from repro.schemes.gaussian import GaussianSummary

        flat = np.frombuffer(blob, dtype=">f8").astype(float)
        mean = flat[: self.dimension]
        cov = np.diag(flat[self.dimension :])
        return GaussianSummary(mean=mean, cov=cov)


class HistogramCodec(SummaryCodec):
    """Histogram summaries: ``bins`` float64 proportions."""

    codec_id = 3

    def __init__(self, bins: int) -> None:
        if bins < 2:
            raise ValueError("need at least 2 bins")
        self.bins = bins

    def summary_size(self) -> int:
        return 8 * self.bins

    def encode_summary(self, summary: Any) -> bytes:
        array = np.asarray(summary, dtype=">f8")
        if array.shape != (self.bins,):
            raise ValueError(f"histogram has shape {array.shape}, codec expects ({self.bins},)")
        return array.tobytes()

    def decode_summary(self, blob: bytes) -> np.ndarray:
        return np.frombuffer(blob, dtype=">f8").astype(float)


def encode_payload(payload: Sequence[Collection], codec: SummaryCodec) -> bytes:
    """Serialise a message payload (the output of ``make_message``).

    Layout: header (version, codec id, count) then, per collection, the
    weight in quanta followed by the fixed-size summary record.
    """
    if len(payload) > 0xFFFF:
        raise ValueError("payload too large for the wire format")
    with span("wire.serialize"):
        chunks = [_HEADER.pack(_WIRE_VERSION, codec.codec_id, len(payload))]
        for collection in payload:
            chunks.append(_WEIGHT.pack(collection.quanta))
            chunks.append(codec.encode_summary(collection.summary))
        return b"".join(chunks)


def decode_payload(blob: bytes, codec: SummaryCodec) -> list[Collection]:
    """Inverse of :func:`encode_payload`."""
    version, codec_id, count = _HEADER.unpack_from(blob, 0)
    if version != _WIRE_VERSION:
        raise ValueError(f"unsupported wire version {version}")
    if codec_id != codec.codec_id:
        raise ValueError(f"message encoded with codec {codec_id}, decoder is {codec.codec_id}")
    offset = _HEADER.size
    record = codec.summary_size()
    collections = []
    for _ in range(count):
        (quanta,) = _WEIGHT.unpack_from(blob, offset)
        offset += _WEIGHT.size
        summary = codec.decode_summary(blob[offset : offset + record])
        offset += record
        collections.append(Collection(summary=summary, quanta=quanta))
    if offset != len(blob):
        raise ValueError(f"trailing bytes in message ({len(blob) - offset})")
    return collections


def payload_size_bytes(n_collections: int, codec: SummaryCodec) -> int:
    """Exact wire size of a payload with ``n_collections`` collections.

    The formula the paper's message-size claim reduces to: header +
    ``n_collections * (8 + summary_size)`` — a function of ``k`` and the
    summary dimension only, never of the network size.
    """
    return _HEADER.size + n_collections * (_WEIGHT.size + codec.summary_size())


def codec_for_scheme(scheme: Any, dimension: int) -> SummaryCodec:
    """Pick the right codec for one of the shipped schemes."""
    from repro.schemes.centroid import CentroidScheme
    from repro.schemes.diagonal import DiagonalGaussianScheme
    from repro.schemes.gm import GaussianMixtureScheme
    from repro.schemes.histogram import HistogramScheme

    if isinstance(scheme, CentroidScheme):
        return CentroidCodec(dimension)
    if isinstance(scheme, DiagonalGaussianScheme):
        return DiagonalGaussianCodec(dimension)
    if isinstance(scheme, GaussianMixtureScheme):
        return GaussianCodec(dimension)
    if isinstance(scheme, HistogramScheme):
        return HistogramCodec(scheme.bins)
    raise TypeError(f"no codec registered for scheme {type(scheme).__name__}")
