"""Packed classification state: a structure-of-arrays view of collections.

The merge pipeline (``ClassifierNode.receive`` -> ``scheme.partition`` ->
``scheme.merge_set``) is the per-step cost that dominates the paper's
Section 5.3 simulations.  The object representation pays for it twice:
every ``partition`` call re-stacks numpy arrays out of Python summary
objects, and every ``merge_set`` call re-reads the same objects per group.

A :class:`PackedState` carries the scheme-relevant arrays *alongside* the
node's ``Collection`` list — ``quanta`` as one integer vector plus
scheme-specific columns (for the Gaussian schemes ``mean (l, d)`` and
``cov (l, d, d)``; for centroids/histograms one ``(l, d)`` position
matrix).  Nodes keep it in sync incrementally: splits only rescale the
quanta vector, receipts concatenate the packed increment, merges write
fresh rows.  Schemes consume it through their array-native entry points
(``partition_packed`` / ``merge_set_packed``); the object path remains as
the conformance reference, and the parity suite pins both paths to
byte-identical classifications.

Quanta are stored as ``int64``.  That is exact (no float rounding) and
covers the default lattice (2**40 quanta per unit value) aggregated over
millions of nodes; the wire format's unsigned-64 bound is reached long
after int64 would matter for any simulation this repository runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.collection import Collection
    from repro.core.scheme import SummaryScheme

__all__ = [
    "PackedState",
    "PackedPayload",
    "SLAB_HEADER_BYTES",
    "slab_region_bytes",
    "write_payload_slab",
    "read_payload_slab",
]

# ---------------------------------------------------------------------------
# Payload slabs: packed dest/quanta/column rows in one contiguous buffer.
#
# The sharded arena's cross-shard exchange writes one slab per (source
# shard, target shard) into a shared-memory segment; only the tiny
# (round, rows) control tuple crosses a pipe.  The layout is columnar —
# the writer holds columnar payload arrays and the reader wants columnar
# views, so rows never need interleaving:
#
#   [rows int64][round int64][dest cap*int64][quanta cap*int64]
#   [col_0 cap*len_0 float64]...[col_m cap*len_m float64]
#
# ``cap`` (the row capacity) is fixed per slab so every region of a
# double-buffered segment sits at a static offset; ``rows <= cap`` of
# each array are valid.  Columns are laid out in the caller's name order
# (by convention sorted, matching ``SummaryInterner``).  The header is
# written last so a torn write can never present a plausible row count
# with incomplete rows behind it.
# ---------------------------------------------------------------------------

#: Bytes of the per-slab header: row count + round index, both int64.
SLAB_HEADER_BYTES = 16


def slab_region_bytes(capacity: int, row_floats: int) -> int:
    """Size in bytes of one slab region holding up to ``capacity`` rows.

    ``row_floats`` is the total float64 count of one row's scheme
    columns (e.g. 6 for GM in d=2: mean 2 + cov 4); dest and quanta add
    two int64 fields per row.
    """
    if capacity < 0:
        raise ValueError(f"slab capacity must be non-negative, got {capacity}")
    return SLAB_HEADER_BYTES + capacity * 8 * (2 + row_floats)


def _slab_views(
    buf,
    offset: int,
    capacity: int,
    column_specs: Sequence[Tuple[str, Tuple[int, ...]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Header/dest/quanta/column views over one slab region (full capacity)."""
    header = np.frombuffer(buf, dtype=np.int64, count=2, offset=offset)
    cursor = offset + SLAB_HEADER_BYTES
    dest = np.frombuffer(buf, dtype=np.int64, count=capacity, offset=cursor)
    cursor += capacity * 8
    quanta = np.frombuffer(buf, dtype=np.int64, count=capacity, offset=cursor)
    cursor += capacity * 8
    columns: Dict[str, np.ndarray] = {}
    for name, shape in column_specs:
        length = int(np.prod(shape, dtype=np.int64)) if shape else 1
        flat = np.frombuffer(
            buf, dtype=np.float64, count=capacity * length, offset=cursor
        )
        columns[name] = flat.reshape((capacity,) + tuple(shape))
        cursor += capacity * length * 8
    return header, dest, quanta, columns


def write_payload_slab(
    buf,
    offset: int,
    capacity: int,
    round_index: int,
    dest: np.ndarray,
    quanta: np.ndarray,
    columns: Dict[str, np.ndarray],
    column_specs: Sequence[Tuple[str, Tuple[int, ...]]],
) -> None:
    """Write one payload slab into ``buf`` at ``offset``.

    ``dest``/``quanta`` are int64 vectors of equal length ``rows``;
    ``columns[name]`` has shape ``(rows,) + shape`` per ``column_specs``
    entry.  Raises ``ValueError`` when ``rows`` exceeds the region's
    ``capacity`` — slabs never grow, capacity is the static worst case.
    """
    rows = int(np.asarray(dest).shape[0])
    if rows > capacity:
        raise ValueError(f"slab overflow: {rows} rows into capacity {capacity}")
    header, dest_view, quanta_view, column_views = _slab_views(
        buf, offset, capacity, column_specs
    )
    dest_view[:rows] = dest
    quanta_view[:rows] = quanta
    for name, _ in column_specs:
        column_views[name][:rows] = columns[name]
    header[1] = round_index
    header[0] = rows


def read_payload_slab(
    buf,
    offset: int,
    capacity: int,
    column_specs: Sequence[Tuple[str, Tuple[int, ...]]],
    copy: bool = False,
) -> Tuple[int, int, np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Read one payload slab; returns ``(round, rows, dest, quanta, columns)``.

    With ``copy=False`` the returned arrays are zero-copy views into
    ``buf`` — valid only until the slab's buffer is rewritten (the
    double-buffer discipline gives readers a full round of slack).
    ``copy=True`` returns owned arrays (the checkpoint/replay snapshot
    path).
    """
    header, dest, quanta, columns = _slab_views(buf, offset, capacity, column_specs)
    rows = int(header[0])
    round_index = int(header[1])
    if rows > capacity:
        raise ValueError(f"corrupt slab header: {rows} rows in capacity {capacity}")
    dest = dest[:rows]
    quanta = quanta[:rows]
    out_columns = {name: column[:rows] for name, column in columns.items()}
    if copy:
        dest = dest.copy()
        quanta = quanta.copy()
        out_columns = {name: column.copy() for name, column in out_columns.items()}
    return round_index, rows, dest, quanta, out_columns


@dataclass(slots=True)
class PackedState:
    """Structure-of-arrays mirror of a list of collections.

    Attributes
    ----------
    quanta:
        Integer quanta counts, shape ``(l,)``, dtype ``int64``.  Always
        mirrors ``collection.quanta`` of the corresponding objects.
    columns:
        Scheme-specific summary arrays; every value has leading
        dimension ``l`` and row ``i`` describes collection ``i``.  The
        owning scheme defines the keys (see ``pack_summaries``).
    row_digests:
        Optional per-row content digests (``supports_fingerprints``
        schemes only): ``row_digests[i]`` addresses the summary behind
        row ``i``.  ``None`` means "not computed"; structural operations
        propagate digests when every input carries them and fall back to
        ``None`` otherwise — digests are a cache, never a requirement.
    """

    quanta: np.ndarray
    columns: Dict[str, np.ndarray]
    row_digests: Optional[Tuple[bytes, ...]] = None

    def __len__(self) -> int:
        return int(self.quanta.shape[0])

    @staticmethod
    def concat_many(states: Sequence["PackedState"]) -> "PackedState":
        """Row-wise concatenation of several packed states, in order.

        The arena engine pools one receiver's local rows with every
        incoming payload slab in a single allocation; pairwise
        :meth:`concat` would copy the growing prefix once per payload.
        """
        if not states:
            raise ValueError("cannot concatenate zero packed states")
        names = states[0].columns.keys()
        for state in states[1:]:
            if state.columns.keys() != names:
                raise ValueError(
                    f"packed column mismatch: {sorted(names)} vs {sorted(state.columns)}"
                )
        digests: Optional[Tuple[bytes, ...]] = None
        if all(state.row_digests is not None for state in states):
            digests = tuple(
                digest for state in states for digest in state.row_digests  # type: ignore[union-attr]
            )
        return PackedState(
            quanta=np.concatenate([state.quanta for state in states]),
            columns={
                name: np.concatenate([state.columns[name] for state in states])
                for name in names
            },
            row_digests=digests,
        )

    def view_rows(self, start: int, stop: int) -> "PackedState":
        """A zero-copy view of the row range ``[start, stop)``.

        The returned state shares memory with this one — mutating either
        is visible in both.  Arena shards use this to hand contiguous
        node ranges to workers without duplicating the arena.
        """
        digests = None
        if self.row_digests is not None:
            digests = self.row_digests[start:stop]
        return PackedState(
            quanta=self.quanta[start:stop],
            columns={name: column[start:stop] for name, column in self.columns.items()},
            row_digests=digests,
        )

    @staticmethod
    def concat(first: "PackedState", second: "PackedState") -> "PackedState":
        """Row-wise concatenation (pooling local state with a receipt)."""
        if first.columns.keys() != second.columns.keys():
            raise ValueError(
                f"packed column mismatch: {sorted(first.columns)} vs {sorted(second.columns)}"
            )
        digests = None
        if first.row_digests is not None and second.row_digests is not None:
            digests = first.row_digests + second.row_digests
        return PackedState(
            quanta=np.concatenate([first.quanta, second.quanta]),
            columns={
                name: np.concatenate([first.columns[name], second.columns[name]])
                for name in first.columns
            },
            row_digests=digests,
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "PackedState":
        """A new packed state holding only the given rows, in order."""
        idx = np.asarray(indices, dtype=np.intp)
        digests = None
        if self.row_digests is not None:
            digests = tuple(self.row_digests[int(i)] for i in idx)
        return PackedState(
            quanta=self.quanta[idx],
            columns={name: column[idx] for name, column in self.columns.items()},
            row_digests=digests,
        )

    def weights(self) -> np.ndarray:
        """Quanta as float weights (the scale partition math runs in)."""
        return self.quanta.astype(float)


@dataclass(slots=True, eq=False)
class PackedPayload:
    """A zero-copy message payload: column views instead of collections.

    Produced by a native-tier node's ``make_message``: ``columns`` are
    (typically) the *sender's own* packed column arrays, shared without
    copying — safe because packed columns are never mutated in place
    (splits rebuild only the quanta vector; receipts assemble fresh
    output arrays).  ``quanta`` carries the sent shares, ``row_digests``
    the sender's per-row content digests when it had them.

    The payload quacks like the ``list[Collection]`` that ``make_message``
    historically returned: ``len``/truthiness give the row count (the
    kernel's ``payload_size`` and "skip empty sends" checks), iteration
    and indexing lazily materialise :class:`~repro.core.collection.Collection`
    objects — the *transport seam*, paid only when a frame codec, a test,
    or analysis code actually needs objects.  Native receivers never
    iterate; they consume the arrays directly via ``receive_packed``.
    """

    scheme: "SummaryScheme"
    quanta: np.ndarray
    columns: Dict[str, np.ndarray]
    row_digests: Optional[Tuple[bytes, ...]] = None
    _materialized: Optional[List["Collection"]] = field(default=None, repr=False)

    def __len__(self) -> int:
        return int(self.quanta.shape[0])

    def to_collections(self) -> List["Collection"]:
        """Materialise (and cache) the equivalent collection list."""
        if self._materialized is None:
            from repro.core.collection import Collection  # noqa: PLC0415 - cycle

            unpack = self.scheme.unpack_summary
            digests: Sequence[Optional[bytes]]
            digests = self.row_digests or (None,) * len(self)
            self._materialized = [
                Collection(
                    summary=unpack(self.columns, index),
                    quanta=int(quanta),
                    digest=digest,
                )
                for index, (quanta, digest) in enumerate(
                    zip(self.quanta.tolist(), digests)
                )
            ]
        return self._materialized

    def __iter__(self) -> Iterator["Collection"]:
        return iter(self.to_collections())

    def __getitem__(self, index: int) -> "Collection":
        return self.to_collections()[index]

    def __eq__(self, other: object) -> bool:
        """List-compatible equality (the historical payload type)."""
        if isinstance(other, PackedPayload):
            return (
                self.columns.keys() == other.columns.keys()
                and bool(np.array_equal(self.quanta, other.quanta))
                and all(
                    np.array_equal(column, other.columns[name])
                    for name, column in self.columns.items()
                )
            )
        if isinstance(other, (list, tuple)):
            if len(self) != len(other):
                return False
            return self.to_collections() == list(other)
        return NotImplemented
