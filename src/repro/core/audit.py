"""Empirical auditing of user-defined summary schemes.

The generic algorithm converges *provided* its instantiation satisfies
requirements R1-R4 (Section 4.2.1).  The schemes shipped here are proven
(and property-tested) to satisfy them, but the whole point of a generic
algorithm is that downstream users write their own schemes — and a scheme
that silently violates R3 or R4 produces summaries that drift away from
the data they claim to describe, with no error ever raised.

:class:`SchemeAuditor` gives scheme authors a machine check: it samples
random collections over a caller-supplied value set, computes the ground
truth through an explicit ``f`` (summarise-the-raw-values), and verifies:

- **R2**: ``val_to_summary(val_i)`` equals summarising the singleton
  collection ``{val_i}``;
- **R3**: ``merge_set`` is invariant to rescaling all weights;
- **R4**: merging summaries equals summarising the merged collection;
- **partition conformance**: outputs respect the ``k`` bound and the
  minimum-weight rule on random inputs.

R1 (Lipschitz continuity in the mixture-space angle) cannot be certified
by sampling — a counterexample may hide anywhere — so the auditor instead
performs a falsification pass: it searches random vector pairs for
distance ratios that blow up, reporting the worst ratio found.

The auditor needs an explicit ``f``; for convenience,
:func:`pooled_values_f` builds one for any scheme whose summary of a
collection equals its ``merge_set`` over singleton summaries (true for
every scheme satisfying R2 + R4, which is exactly what is being audited —
the circularity is broken by the consistency check, which re-derives the
same summary through sequential pairwise merges in random orders and
verifies all routes agree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.collection import Collection
from repro.core.scheme import PartitionError, SummaryScheme, validate_partition
from repro.core.weights import Quantization

__all__ = ["AuditFailure", "AuditReport", "SchemeAuditor", "pooled_values_f"]


@dataclass(frozen=True)
class AuditFailure:
    """One discovered violation."""

    requirement: str
    detail: str


@dataclass
class AuditReport:
    """Outcome of an audit run."""

    failures: list[AuditFailure] = field(default_factory=list)
    checks_run: int = 0
    worst_r1_ratio: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "PASSED" if self.passed else "FAILED"
        lines = [f"scheme audit {status}: {self.checks_run} checks, "
                 f"worst d_S/d_M ratio {self.worst_r1_ratio:.3g}"]
        for failure in self.failures:
            lines.append(f"  [{failure.requirement}] {failure.detail}")
        return "\n".join(lines)


def pooled_values_f(
    scheme: SummaryScheme,
) -> Callable[[np.ndarray, np.ndarray], Any]:
    """Build an explicit ``f`` from a scheme's own primitive operations.

    ``f(values, vector)`` summarises the collection holding ``vector[i]``
    weight of ``values[i]`` by merging the weighted singleton summaries in
    one call — the definition of ``f`` under R2 + R4.
    """

    def f(values: np.ndarray, vector: np.ndarray) -> Any:
        items = [
            (scheme.val_to_summary(values[index]), float(weight))
            for index, weight in enumerate(vector)
            if weight > 0
        ]
        if not items:
            raise ValueError("empty collection has no summary")
        if len(items) == 1:
            return items[0][0]
        return scheme.merge_set(items)

    return f


class SchemeAuditor:
    """Randomised conformance checking for a summary scheme.

    Parameters
    ----------
    scheme:
        The instantiation under audit.
    values:
        The input-value set collections are drawn over (each row one
        value, in whatever form the scheme accepts).
    seed:
        Seeds the audit's RNG; audits are reproducible.
    tolerance:
        Numerical slack for summary equality, applied through the
        scheme's own ``distance``.
    """

    def __init__(
        self,
        scheme: SummaryScheme,
        values: np.ndarray,
        seed: int = 0,
        tolerance: float = 1e-7,
    ) -> None:
        self.scheme = scheme
        self.values = np.asarray(values)
        if len(self.values) < 2:
            raise ValueError("auditing needs at least two input values")
        self.rng = np.random.default_rng(seed)
        self.tolerance = tolerance
        self.f = pooled_values_f(scheme)

    # ------------------------------------------------------------------
    # Sampling helpers
    # ------------------------------------------------------------------
    def _random_vector(self) -> np.ndarray:
        """A random mixture vector with components bounded away from 0."""
        n = len(self.values)
        vector = self.rng.uniform(0.05, 1.0, size=n)
        # Randomly zero some coordinates so partial collections are covered.
        mask = self.rng.uniform(size=n) < 0.4
        if mask.all():
            mask[self.rng.integers(n)] = False
        vector[mask] = 0.0
        return vector

    def _distance(self, a: Any, b: Any) -> float:
        return float(self.scheme.distance(a, b))

    # ------------------------------------------------------------------
    # Requirement checks
    # ------------------------------------------------------------------
    def check_r2(self, report: AuditReport) -> None:
        """val_to_summary agrees with f on singleton collections."""
        for index in range(len(self.values)):
            report.checks_run += 1
            direct = self.scheme.val_to_summary(self.values[index])
            unit = np.zeros(len(self.values))
            unit[index] = 1.0
            via_f = self.f(self.values, unit)
            gap = self._distance(direct, via_f)
            if gap > self.tolerance:
                report.failures.append(
                    AuditFailure("R2", f"value {index}: d_S(valToSummary, f(e_i)) = {gap:.3g}")
                )

    def check_r3(self, report: AuditReport, samples: int = 30) -> None:
        """merge_set is invariant to rescaling all weights."""
        for _ in range(samples):
            report.checks_run += 1
            vectors = [self._random_vector() for _ in range(3)]
            items = [(self.f(self.values, v), float(v.sum())) for v in vectors]
            alpha = float(self.rng.uniform(0.01, 50.0))
            scaled = [(summary, alpha * weight) for summary, weight in items]
            gap = self._distance(self.scheme.merge_set(items), self.scheme.merge_set(scaled))
            if gap > self.tolerance:
                report.failures.append(
                    AuditFailure("R3", f"rescaling weights by {alpha:.3g} moved the merge by {gap:.3g}")
                )

    def check_r4(self, report: AuditReport, samples: int = 30) -> None:
        """Merging summaries commutes with merging collections."""
        for _ in range(samples):
            report.checks_run += 1
            count = int(self.rng.integers(2, 5))
            vectors = [self._random_vector() for _ in range(count)]
            items = [(self.f(self.values, v), float(v.sum())) for v in vectors]
            merged = self.scheme.merge_set(items)
            expected = self.f(self.values, np.sum(vectors, axis=0))
            gap = self._distance(merged, expected)
            if gap > self.tolerance:
                report.failures.append(
                    AuditFailure("R4", f"merge of {count} summaries off by d_S = {gap:.3g}")
                )

    def check_r1(self, report: AuditReport, samples: int = 100) -> None:
        """Falsification pass: look for exploding d_S / d_M ratios."""
        worst = 0.0
        for _ in range(samples):
            report.checks_run += 1
            v1 = self._random_vector()
            v2 = self._random_vector()
            norm1, norm2 = np.linalg.norm(v1), np.linalg.norm(v2)
            if norm1 == 0 or norm2 == 0:
                continue
            cosine = float(v1 @ v2 / (norm1 * norm2))
            angle = math.acos(min(1.0, max(-1.0, cosine)))
            if angle < 1e-6:
                continue
            gap = self._distance(self.f(self.values, v1), self.f(self.values, v2))
            worst = max(worst, gap / angle)
        report.worst_r1_ratio = max(report.worst_r1_ratio, worst)

    def check_f_consistency(self, report: AuditReport, samples: int = 20) -> None:
        """All merge orders produce the same summary.

        Summarising a collection via one big ``merge_set`` call must agree
        with folding the weighted singletons in pairwise, in any order —
        otherwise gossip executions (which merge in network-dependent
        orders) would not share a destination.
        """
        for _ in range(samples):
            report.checks_run += 1
            vector = self._random_vector()
            all_at_once = self.f(self.values, vector)
            items = [
                (self.scheme.val_to_summary(self.values[index]), float(weight))
                for index, weight in enumerate(vector)
                if weight > 0
            ]
            order = self.rng.permutation(len(items))
            running_summary, running_weight = items[order[0]]
            for position in order[1:]:
                summary, weight = items[position]
                running_summary = self.scheme.merge_set(
                    [(running_summary, running_weight), (summary, weight)]
                )
                running_weight += weight
            gap = self._distance(all_at_once, running_summary)
            if gap > self.tolerance:
                report.failures.append(
                    AuditFailure(
                        "consistency",
                        f"sequential pairwise merge disagrees with batch merge by {gap:.3g}",
                    )
                )

    def check_partition(
        self,
        report: AuditReport,
        k: int = 3,
        samples: int = 20,
        quantization: Quantization | None = None,
    ) -> None:
        """Partition outputs respect Algorithm 1's structural rules."""
        quantization = quantization or Quantization(16)
        for _ in range(samples):
            report.checks_run += 1
            count = int(self.rng.integers(2, 9))
            collections = []
            for _ in range(count):
                vector = self._random_vector()
                quanta = int(self.rng.integers(1, 65))
                collections.append(
                    Collection(summary=self.f(self.values, vector), quanta=quanta)
                )
            try:
                groups = self.scheme.partition(collections, k, quantization)
                validate_partition(groups, collections, k, quantization)
            except PartitionError as error:
                report.failures.append(AuditFailure("partition", str(error)))
            except Exception as error:  # noqa: BLE001 - auditing must not crash
                report.failures.append(
                    AuditFailure("partition", f"raised {type(error).__name__}: {error}")
                )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, k: int = 3) -> AuditReport:
        """Run all checks; returns the collected report."""
        report = AuditReport()
        self.check_r2(report)
        self.check_r3(report)
        self.check_r4(report)
        self.check_r1(report)
        self.check_f_consistency(report)
        self.check_partition(report, k=k)
        return report
