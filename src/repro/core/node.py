"""The generic distributed classification algorithm (Algorithm 1).

A :class:`ClassifierNode` holds a node's entire protocol state: its current
classification (a set of weighted collection summaries).  Two operations
mirror the two atomic blocks of Algorithm 1:

- :meth:`ClassifierNode.make_message` is the periodic split-and-send block
  (lines 3-7): every collection's weight is halved on the quantum lattice,
  one share stays, the other is returned for transmission.
- :meth:`ClassifierNode.receive` is the receipt handler (lines 8-11): the
  incoming collections are pooled with the local ones, the scheme's
  ``partition`` groups them into at most ``k`` sets, and each set is merged
  into a single collection via the scheme's ``merge_set``.

The node is transport-agnostic: neighbour choice, fairness, and message
delivery live in :mod:`repro.network` and :mod:`repro.protocols`.  This
separation lets the same node run under round-based gossip (the paper's
simulation methodology) and fully asynchronous event-driven executions (the
setting of the convergence proof).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.mixture import MixtureVector
from repro.core.packed import PackedState
from repro.core.scheme import SummaryScheme, validate_partition
from repro.core.weights import Quantization
from repro.obs.context import current_sink
from repro.obs.events import Event, EventSink
from repro.obs.profiling import current_registry, span

__all__ = ["ClassifierNode", "NodeStats", "packed_default"]


def packed_default() -> bool:
    """Whether nodes run the packed (array-native) hot path by default.

    On unless ``REPRO_PACKED`` is set to ``0``/``false``/``no``/``off``.
    The parity suite flips this to pin the packed path against the
    object-path conformance reference.
    """
    return os.environ.get("REPRO_PACKED", "1").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


@dataclass(slots=True)
class NodeStats:
    """Instrumentation counters; purely observational."""

    splits: int = 0
    merges: int = 0
    messages_made: int = 0
    batches_received: int = 0
    collections_received: int = 0
    partition_calls: int = 0
    fastpath_hits: int = 0
    fastpath_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "splits": self.splits,
            "merges": self.merges,
            "messages_made": self.messages_made,
            "batches_received": self.batches_received,
            "collections_received": self.collections_received,
            "partition_calls": self.partition_calls,
            "fastpath_hits": self.fastpath_hits,
            "fastpath_misses": self.fastpath_misses,
        }


class ClassifierNode:
    """State machine for one node of the generic algorithm.

    Parameters
    ----------
    node_id:
        This node's index in ``0..n-1``; doubles as the input-value index
        for auxiliary tracking.
    value:
        The input value taken at time 0 (any object the scheme accepts).
    scheme:
        The instantiation: summary domain plus ``val_to_summary`` /
        ``merge_set`` / ``partition`` / ``distance``.
    k:
        Maximum number of collections per classification (the compression
        bound).
    quantization:
        The weight lattice; defaults to a 2**20-quanta unit.
    track_aux:
        When true, every collection carries its mixture-space vector
        (requires ``n_inputs``).  Used by tests and provenance-based
        measurements; costs O(n) memory per collection.
    n_inputs:
        Total number of input values in the system; only needed when
        ``track_aux`` is set.
    validate:
        When true, every partition returned by the scheme is checked
        against Algorithm 1's structural rules.  On by default in tests,
        off in large benchmarks.
    packed:
        When true and the scheme declares ``supports_packed``, the node
        carries a structure-of-arrays :class:`~repro.core.packed.PackedState`
        alongside its collection list and routes ``partition`` / ``merge_set``
        through the scheme's array-native entry points.  ``None`` (the
        default) defers to :func:`packed_default` (the ``REPRO_PACKED``
        environment variable).  Classifications are byte-identical either
        way; see ``docs/performance.md``.
    event_sink:
        Destination for this node's ``split``/``merge``
        :class:`~repro.obs.events.Event` records; defaults to the
        ambient tracing sink (``None`` unless a
        :func:`repro.obs.context.tracing` block is active).
    """

    def __init__(
        self,
        node_id: int,
        value: Any,
        scheme: SummaryScheme,
        k: int,
        quantization: Optional[Quantization] = None,
        track_aux: bool = False,
        n_inputs: Optional[int] = None,
        validate: bool = False,
        packed: Optional[bool] = None,
        event_sink: Optional[EventSink] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.node_id = node_id
        self.scheme = scheme
        self.k = k
        self.quantization = quantization or Quantization()
        self.validate = validate
        self.stats = NodeStats()
        self.event_sink = event_sink if event_sink is not None else current_sink()
        if packed is None:
            packed = packed_default()
        self.packed = bool(packed) and scheme.supports_packed

        aux = None
        if track_aux:
            if n_inputs is None:
                raise ValueError("track_aux requires n_inputs")
            aux = MixtureVector.unit(node_id, n_inputs, self.quantization.unit)
        initial = Collection(
            summary=scheme.val_to_summary(value),
            quanta=self.quantization.unit,
            aux=aux,
        )
        self._collections: list[Collection] = [initial]
        self._packed: Optional[PackedState] = (
            self._pack(self._collections) if self.packed else None
        )

    def _pack(self, collections: Sequence[Collection]) -> PackedState:
        """Build the structure-of-arrays view of ``collections``."""
        quanta = np.fromiter(
            (collection.quanta for collection in collections),
            dtype=np.int64,
            count=len(collections),
        )
        columns = self.scheme.pack_summaries(
            [collection.summary for collection in collections]
        )
        return PackedState(quanta=quanta, columns=columns)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def classification(self) -> Classification:
        """The node's current output (Definition 4's ``classification_i(t)``)."""
        return Classification(self._collections)

    @property
    def total_quanta(self) -> int:
        return sum(collection.quanta for collection in self._collections)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 3-7: split
    # ------------------------------------------------------------------
    def make_message(self) -> list[Collection]:
        """Halve every collection; keep one share, return the other.

        The returned list is the message payload for one neighbour.  It may
        be empty when every local collection holds a single quantum (then
        nothing can be sent without violating quantisation); callers should
        skip transmission in that case.
        """
        kept: list[Collection] = []
        sent: list[Collection] = []
        for collection in self._collections:
            kept_share, sent_share = collection.split(self.quantization)
            kept.append(kept_share)
            if sent_share is not None:
                sent.append(sent_share)
        self._collections = kept
        if self._packed is not None:
            # Splitting halves weights but leaves summaries untouched, so
            # only the quanta column changes: kept = q - q // 2 (identity
            # at one quantum, matching Collection.split).
            quanta = self._packed.quanta
            self._packed = PackedState(
                quanta=quanta - quanta // 2, columns=self._packed.columns
            )
        self.stats.splits += 1
        if sent:
            self.stats.messages_made += 1
        if self.event_sink is not None:
            self.event_sink.emit(Event(kind="split", node=self.node_id, items=len(sent)))
        return sent

    # ------------------------------------------------------------------
    # Algorithm 1, lines 8-11: receive and merge
    # ------------------------------------------------------------------
    def receive(self, incoming: Sequence[Collection]) -> None:
        """Pool incoming collections with local state, partition, and merge.

        ``incoming`` may concatenate the payloads of several messages: the
        paper's simulations have nodes that hear from multiple neighbours
        in a round "accumulate all the received collections and run EM once
        for the entire set" (Section 5.3), and batching is also how the
        asynchronous handler processes one message at a time.
        """
        self.stats.batches_received += 1
        self.stats.collections_received += len(incoming)
        if not incoming:
            return
        big_set = self._collections + list(incoming)
        packed_set: Optional[PackedState] = None
        if self._packed is not None:
            packed_set = PackedState.concat(self._packed, self._pack(incoming))
        if self._try_fastpath(big_set, packed_set):
            return
        self.stats.fastpath_misses += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("partition.fastpath_miss")
        if packed_set is not None:
            groups = self.scheme.partition_packed(packed_set, self.k, self.quantization)
        else:
            groups = self.scheme.partition(big_set, self.k, self.quantization)
        self.stats.partition_calls += 1
        if self.validate:
            validate_partition(groups, big_set, self.k, self.quantization)
        self._collections = [
            self._merge_group(big_set, packed_set, group) for group in groups
        ]
        if self.packed:
            self._packed = self._pack(self._collections)

    def _try_fastpath(
        self, big_set: list[Collection], packed_set: Optional[PackedState]
    ) -> bool:
        """Adopt the pooled set unpartitioned when that is provably correct.

        When the pooled set has at most ``k`` collections and the scheme
        declares :attr:`~repro.core.scheme.SummaryScheme.identity_below_k`,
        ``partition`` would return singleton groups in index order — so the
        partition/merge machinery can be skipped outright.  The identity
        claim only holds when conformance rule 2 cannot fire, i.e. when no
        minimum-weight collection is present (or the set is a single
        collection); otherwise we fall through to the real partition.
        """
        size = len(big_set)
        if size > self.k or not self.scheme.identity_below_k:
            return False
        if size > 1:
            if packed_set is not None:
                min_quanta = int(packed_set.quanta.min())
            else:
                min_quanta = min(collection.quanta for collection in big_set)
            if self.quantization.is_minimum(min_quanta):
                return False
        if self.validate:
            groups = [[index] for index in range(size)]
            validate_partition(groups, big_set, self.k, self.quantization)
        self._collections = big_set
        if packed_set is not None:
            self._packed = packed_set
        self.stats.fastpath_hits += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("partition.fastpath_hit")
        if self.event_sink is not None:
            self.event_sink.emit(
                Event(kind="fastpath", node=self.node_id, items=size)
            )
        return True

    def _merge_group(
        self,
        big_set: list[Collection],
        packed_set: Optional[PackedState],
        group: Sequence[int],
    ) -> Collection:
        """Merge one partition group into a single collection (line 11)."""
        if len(group) == 1:
            # Merging a singleton is the identity under R4; skip the
            # arithmetic so repeated gossip cannot accumulate float churn.
            return big_set[group[0]]
        members = [big_set[index] for index in group]
        with span("scheme.merge_set"):
            if packed_set is not None:
                summary = self.scheme.merge_set_packed(packed_set, group)
            else:
                summary = self.scheme.merge_set(
                    [(member.summary, float(member.quanta)) for member in members]
                )
        quanta = sum(member.quanta for member in members)
        aux = None
        if members[0].aux is not None:
            aux = MixtureVector.sum_of(member.aux for member in members)
        self.stats.merges += 1
        if self.event_sink is not None:
            self.event_sink.emit(
                Event(kind="merge", node=self.node_id, items=len(members))
            )
        return Collection(summary=summary, quanta=quanta, aux=aux)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassifierNode(id={self.node_id}, collections={len(self._collections)}, "
            f"quanta={self.total_quanta})"
        )
