"""The generic distributed classification algorithm (Algorithm 1).

A :class:`ClassifierNode` holds a node's entire protocol state: its current
classification (a set of weighted collection summaries).  Two operations
mirror the two atomic blocks of Algorithm 1:

- :meth:`ClassifierNode.make_message` is the periodic split-and-send block
  (lines 3-7): every collection's weight is halved on the quantum lattice,
  one share stays, the other is returned for transmission.
- :meth:`ClassifierNode.receive` is the receipt handler (lines 8-11): the
  incoming collections are pooled with the local ones, the scheme's
  ``partition`` groups them into at most ``k`` sets, and each set is merged
  into a single collection via the scheme's ``merge_set``.

The node is transport-agnostic: neighbour choice, fairness, and message
delivery live in :mod:`repro.network` and :mod:`repro.protocols`.  This
separation lets the same node run under round-based gossip (the paper's
simulation methodology) and fully asynchronous event-driven executions (the
setting of the convergence proof).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.fingerprint import (
    CachedReceive,
    MergeCache,
    combine_digests,
    state_fingerprint_of,
)
from repro.core.mixture import MixtureVector
from repro.core.packed import PackedPayload, PackedState
from repro.core.scheme import SummaryScheme, validate_partition
from repro.core.weights import Quantization
from repro.native import native_enabled
from repro.obs.context import current_sink
from repro.obs.events import Event, EventSink
from repro.obs.profiling import current_registry, span

__all__ = ["ClassifierNode", "NodeStats", "packed_default"]


def packed_default() -> bool:
    """Whether nodes run the packed (array-native) hot path by default.

    On unless ``REPRO_PACKED`` is set to ``0``/``false``/``no``/``off``.
    The parity suite flips this to pin the packed path against the
    object-path conformance reference.
    """
    return os.environ.get("REPRO_PACKED", "1").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


@dataclass(slots=True)
class NodeStats:
    """Instrumentation counters; purely observational."""

    splits: int = 0
    merges: int = 0
    messages_made: int = 0
    batches_received: int = 0
    collections_received: int = 0
    partition_calls: int = 0
    fastpath_hits: int = 0
    fastpath_misses: int = 0
    cache_memo_hits: int = 0
    cache_noop_hits: int = 0
    cache_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "splits": self.splits,
            "merges": self.merges,
            "messages_made": self.messages_made,
            "batches_received": self.batches_received,
            "collections_received": self.collections_received,
            "partition_calls": self.partition_calls,
            "fastpath_hits": self.fastpath_hits,
            "fastpath_misses": self.fastpath_misses,
            "cache_memo_hits": self.cache_memo_hits,
            "cache_noop_hits": self.cache_noop_hits,
            "cache_misses": self.cache_misses,
        }


class ClassifierNode:
    """State machine for one node of the generic algorithm.

    Parameters
    ----------
    node_id:
        This node's index in ``0..n-1``; doubles as the input-value index
        for auxiliary tracking.
    value:
        The input value taken at time 0 (any object the scheme accepts).
    scheme:
        The instantiation: summary domain plus ``val_to_summary`` /
        ``merge_set`` / ``partition`` / ``distance``.
    k:
        Maximum number of collections per classification (the compression
        bound).
    quantization:
        The weight lattice; defaults to a 2**20-quanta unit.
    track_aux:
        When true, every collection carries its mixture-space vector
        (requires ``n_inputs``).  Used by tests and provenance-based
        measurements; costs O(n) memory per collection.
    n_inputs:
        Total number of input values in the system; only needed when
        ``track_aux`` is set.
    validate:
        When true, every partition returned by the scheme is checked
        against Algorithm 1's structural rules.  On by default in tests,
        off in large benchmarks.
    packed:
        When true and the scheme declares ``supports_packed``, the node
        carries a structure-of-arrays :class:`~repro.core.packed.PackedState`
        alongside its collection list and routes ``partition`` / ``merge_set``
        through the scheme's array-native entry points.  ``None`` (the
        default) defers to :func:`packed_default` (the ``REPRO_PACKED``
        environment variable).  Classifications are byte-identical either
        way; see ``docs/performance.md``.
    event_sink:
        Destination for this node's ``split``/``merge``
        :class:`~repro.obs.events.Event` records; defaults to the
        ambient tracing sink (``None`` unless a
        :func:`repro.obs.context.tracing` block is active).
    merge_cache:
        The run-scoped :class:`~repro.core.fingerprint.MergeCache`
        shared by every node of a network, or ``None`` to disable
        receive memoisation and the certified no-op short-circuit for
        this node.  Only consulted when the scheme declares
        ``supports_fingerprints``; cache hits are byte-identical to the
        uncached pipeline (see ``docs/performance.md``).
    """

    def __init__(
        self,
        node_id: int,
        value: Any,
        scheme: SummaryScheme,
        k: int,
        quantization: Optional[Quantization] = None,
        track_aux: bool = False,
        n_inputs: Optional[int] = None,
        validate: bool = False,
        packed: Optional[bool] = None,
        event_sink: Optional[EventSink] = None,
        merge_cache: Optional[MergeCache] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.node_id = node_id
        self.scheme = scheme
        self.k = k
        self.quantization = quantization or Quantization()
        self.validate = validate
        self.stats = NodeStats()
        self.event_sink = event_sink if event_sink is not None else current_sink()
        if packed is None:
            packed = packed_default()
        self.packed = bool(packed) and scheme.supports_packed
        self.merge_cache = (
            merge_cache if scheme.supports_fingerprints else None
        )
        self._track_aux = bool(track_aux)
        # The native tier: packed state is *authoritative* and messages
        # are zero-copy PackedPayload views; collection objects are
        # materialised lazily, only when observation code asks.  Requires
        # the packed entry points plus content digests, and is disabled
        # under aux tracking / validation (both need real objects in the
        # pipeline).  Byte-parity with the object path is pinned by the
        # native parity suite; REPRO_NATIVE=0 turns the tier off.
        self.native = (
            self.packed
            and scheme.supports_fingerprints
            and not self._track_aux
            and not validate
            and native_enabled()
        )
        # Content-address caches: per-collection digests plus the two
        # derived fingerprints, all lazy and invalidated on state change.
        self._digests: Optional[list[bytes]] = None
        self._summary_fp: Optional[bytes] = None
        self._state_fp: Optional[bytes] = None

        aux = None
        if track_aux:
            if n_inputs is None:
                raise ValueError("track_aux requires n_inputs")
            aux = MixtureVector.unit(node_id, n_inputs, self.quantization.unit)
        initial = Collection(
            summary=scheme.val_to_summary(value),
            quanta=self.quantization.unit,
            aux=aux,
        )
        # In native mode the packed state is authoritative and this list
        # may be None (stale) until an observer materialises it.
        self._collections: Optional[list[Collection]] = [initial]
        self._packed: Optional[PackedState] = (
            self._pack(self._collections) if self.packed else None
        )

    def _pack(self, collections: Sequence[Collection]) -> PackedState:
        """Build the structure-of-arrays view of ``collections``."""
        quanta = np.fromiter(
            (collection.quanta for collection in collections),
            dtype=np.int64,
            count=len(collections),
        )
        columns = self.scheme.pack_summaries(
            [collection.summary for collection in collections]
        )
        return PackedState(quanta=quanta, columns=columns)

    def _materialize(self) -> list[Collection]:
        """The collection list, rebuilt from packed rows when stale.

        The native tier keeps only the packed state current through the
        hot loop; summary objects are reconstructed here — with the same
        bytes (``unpack_summary`` inverts ``pack_summaries`` exactly) —
        the first time an observer needs them.
        """
        if self._collections is None:
            packed = self._packed
            assert packed is not None
            unpack = self.scheme.unpack_summary
            digests: Sequence[Optional[bytes]]
            digests = packed.row_digests or (None,) * len(packed)
            self._collections = [
                Collection(
                    summary=unpack(packed.columns, index),
                    quanta=quanta,
                    digest=digest,
                )
                for index, (quanta, digest) in enumerate(
                    zip(packed.quanta.tolist(), digests)
                )
            ]
        return self._collections

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def classification(self) -> Classification:
        """The node's current output (Definition 4's ``classification_i(t)``)."""
        return Classification(self._materialize())

    @property
    def total_quanta(self) -> int:
        if self._collections is None:
            assert self._packed is not None
            return int(self._packed.quanta.sum())
        return sum(collection.quanta for collection in self._collections)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def _set_digests(self, digests: Optional[list[bytes]]) -> None:
        self._digests = digests
        self._summary_fp = None
        self._state_fp = None
        if digests is not None and self._collections is not None:
            # Stamp each collection so downstream receivers (split shares
            # carry the digest along) can skip re-hashing the summary.
            for collection, digest in zip(self._collections, digests):
                collection.digest = digest

    def _ensure_digests(self) -> list[bytes]:
        if self._digests is None:
            if self._collections is None:
                self._digests = list(self._ensure_packed_digests())
            else:
                digest = self.scheme.summary_digest
                self._digests = [digest(c.summary) for c in self._collections]
        return self._digests

    def _ensure_packed_digests(self) -> tuple[bytes, ...]:
        """Per-row digests of the packed state, computed at most once."""
        packed = self._packed
        assert packed is not None
        if packed.row_digests is None:
            if self._digests is not None and len(self._digests) == len(packed):
                packed.row_digests = tuple(self._digests)
            else:
                digest_row = self.scheme.digest_row
                packed.row_digests = tuple(
                    digest_row(packed.columns, index) for index in range(len(packed))
                )
        return packed.row_digests

    def summary_digests(self) -> Optional[tuple[bytes, ...]]:
        """Per-collection content digests, aligned with the classification.

        ``None`` when the scheme does not support fingerprints.
        """
        if not self.scheme.supports_fingerprints:
            return None
        return tuple(self._ensure_digests())

    def summary_fingerprint(self) -> Optional[bytes]:
        """Order-insensitive digest of *which* summaries the node holds.

        Ignores quanta, so splitting leaves it unchanged — this is the
        fingerprint the kernel's quiescence probe compares, since in a
        structurally converged run only quanta still move.
        """
        if not self.scheme.supports_fingerprints:
            return None
        if self._summary_fp is None:
            self._summary_fp = combine_digests(self._ensure_digests())
        return self._summary_fp

    def state_fingerprint(self) -> Optional[bytes]:
        """Order-insensitive digest of the full ``(summary, quanta)`` state."""
        if not self.scheme.supports_fingerprints:
            return None
        if self._state_fp is None:
            if self._collections is None:
                assert self._packed is not None
                quanta: Sequence[int] = self._packed.quanta.tolist()
            else:
                quanta = [collection.quanta for collection in self._collections]
            self._state_fp = state_fingerprint_of(zip(self._ensure_digests(), quanta))
        return self._state_fp

    # ------------------------------------------------------------------
    # Algorithm 1, lines 3-7: split
    # ------------------------------------------------------------------
    def make_message(self) -> "list[Collection] | PackedPayload":
        """Halve every collection; keep one share, return the other.

        The returned sequence is the message payload for one neighbour.
        It may be empty when every local collection holds a single quantum
        (then nothing can be sent without violating quantisation); callers
        should skip transmission in that case.  On the native tier the
        payload is a :class:`~repro.core.packed.PackedPayload` — column
        views shared with the local packed state, no objects built — which
        still quacks like the historical collection list.
        """
        if self.native:
            return self._make_message_packed()
        kept: list[Collection] = []
        sent: list[Collection] = []
        assert self._collections is not None
        for collection in self._collections:
            kept_share, sent_share = collection.split(self.quantization)
            kept.append(kept_share)
            if sent_share is not None:
                sent.append(sent_share)
        self._collections = kept
        if self._packed is not None:
            # Splitting halves weights but leaves summaries untouched, so
            # only the quanta column changes: kept = q - q // 2 (identity
            # at one quantum, matching Collection.split).
            quanta = self._packed.quanta
            self._packed = PackedState(
                quanta=quanta - quanta // 2, columns=self._packed.columns
            )
        self.stats.splits += 1
        # Splitting changes quanta only: per-collection digests and the
        # summary fingerprint survive, the state fingerprint does not.
        self._state_fp = None
        if sent:
            self.stats.messages_made += 1
        if self.event_sink is not None:
            self.event_sink.emit(Event(kind="split", node=self.node_id, items=len(sent)))
        return sent

    def _make_message_packed(self) -> PackedPayload:
        """Native split: quanta arithmetic only, column arrays shared.

        ``Collection.split`` keeps ``q - q // 2`` and sends ``q // 2``
        (nothing at one quantum); the same arithmetic runs here on the
        whole quanta vector at once.  Summaries do not change, so the
        payload *shares* the column arrays — zero-copy, safe because
        packed columns are never mutated in place — except when some rows
        have nothing to send, where the sent rows are gathered out.
        """
        packed = self._packed
        assert packed is not None
        quanta = packed.quanta
        sent = quanta >> 1  # q // 2 exactly, for non-negative int64
        self._packed = PackedState(
            quanta=quanta - sent,
            columns=packed.columns,
            row_digests=packed.row_digests,
        )
        self._collections = None
        self.stats.splits += 1
        # Splitting changes quanta only: per-collection digests and the
        # summary fingerprint survive, the state fingerprint does not.
        self._state_fp = None
        mask = sent > 0
        n_sent = int(mask.sum())
        if n_sent == len(sent):
            payload = PackedPayload(
                scheme=self.scheme,
                quanta=sent,
                columns=packed.columns,
                row_digests=packed.row_digests,
            )
        elif n_sent == 0:
            payload = PackedPayload(
                scheme=self.scheme,
                quanta=sent[:0],
                columns={name: col[:0] for name, col in packed.columns.items()},
                row_digests=() if packed.row_digests is not None else None,
            )
        else:
            digests = None
            if packed.row_digests is not None:
                digests = tuple(
                    digest
                    for digest, keep in zip(packed.row_digests, mask.tolist())
                    if keep
                )
            payload = PackedPayload(
                scheme=self.scheme,
                quanta=sent[mask],
                columns={name: col[mask] for name, col in packed.columns.items()},
                row_digests=digests,
            )
        if n_sent:
            self.stats.messages_made += 1
        if self.event_sink is not None:
            self.event_sink.emit(Event(kind="split", node=self.node_id, items=n_sent))
        return payload

    # ------------------------------------------------------------------
    # Algorithm 1, lines 8-11: receive and merge
    # ------------------------------------------------------------------
    def receive(self, incoming: Sequence[Collection]) -> None:
        """Pool incoming collections with local state, partition, and merge.

        ``incoming`` may concatenate the payloads of several messages: the
        paper's simulations have nodes that hear from multiple neighbours
        in a round "accumulate all the received collections and run EM once
        for the entire set" (Section 5.3), and batching is also how the
        asynchronous handler processes one message at a time.

        A native-tier node accepts a :class:`~repro.core.packed.PackedPayload`
        directly (no materialisation); plain collection lists run the
        object pipeline, preserving its exact object-identity behaviour
        (singleton groups adopt the incoming objects as-is).
        """
        if self.native:
            if isinstance(incoming, PackedPayload):
                self.receive_packed((incoming,))
                return
            self._materialize()
        self.stats.batches_received += 1
        self.stats.collections_received += len(incoming)
        if not incoming:
            return
        cache = self.merge_cache
        local_digests: Optional[list[bytes]] = None
        incoming_digests: Optional[list[bytes]] = None
        if (
            cache is not None
            and not self._track_aux
            and all(collection.aux is None for collection in incoming)
        ):
            summary_digest = self.scheme.summary_digest
            incoming_digests = [
                c.digest if c.digest is not None else summary_digest(c.summary)
                for c in incoming
            ]
            local_digests = self._ensure_digests()
        assert self._collections is not None
        big_set = self._collections + list(incoming)
        if self._try_fastpath(big_set, incoming):
            if local_digests is not None and incoming_digests is not None:
                self._set_digests(local_digests + incoming_digests)
            else:
                self._set_digests(None)
            return
        self.stats.fastpath_misses += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("partition.fastpath_miss")
        key = None
        if incoming_digests is not None:
            assert cache is not None and local_digests is not None
            # The memo key is *order-sensitive* on both sides, deliberately
            # stricter than the order-insensitive fingerprint: the EM
            # reduction breaks argmax/argmin ties by pooled index, so two
            # receipts over the same multiset but different collection
            # orders may legitimately produce differently ordered output.
            key = (
                id(self.scheme),
                self.k,
                self.quantization.unit,
                tuple(
                    (digest, collection.quanta)
                    for digest, collection in zip(local_digests, self._collections)
                ),
                tuple(
                    (digest, collection.quanta)
                    for digest, collection in zip(incoming_digests, incoming)
                ),
            )
            entry = cache.lookup(key)
            if entry is not None:
                self._apply_cached(entry, len(big_set))
                return
            if self._try_certified_noop(incoming, local_digests, incoming_digests):
                return
        # The pooled packed state is only needed from here on — building
        # it above would waste the work on every cache-served receipt.
        packed_set: Optional[PackedState] = None
        if self._packed is not None:
            packed_set = PackedState.concat(self._packed, self._pack(incoming))
        if packed_set is not None:
            groups = self.scheme.partition_packed(packed_set, self.k, self.quantization)
        else:
            groups = self.scheme.partition(big_set, self.k, self.quantization)
        self.stats.partition_calls += 1
        if self.validate:
            validate_partition(groups, big_set, self.k, self.quantization)
        self._collections = [
            self._merge_group(big_set, packed_set, group) for group in groups
        ]
        if self.packed:
            self._packed = self._pack(self._collections)
        if key is not None:
            assert cache is not None
            summary_digest = self.scheme.summary_digest
            out_digests = [summary_digest(c.summary) for c in self._collections]
            self._set_digests(out_digests)
            if self._packed is not None:
                self._packed.row_digests = tuple(out_digests)
            cache.store(
                key,
                CachedReceive(
                    summaries=tuple(c.summary for c in self._collections),
                    digests=tuple(out_digests),
                    quanta=tuple(c.quanta for c in self._collections),
                    group_sizes=tuple(len(group) for group in groups),
                    columns=(
                        dict(self._packed.columns)
                        if self._packed is not None
                        else None
                    ),
                ),
            )
            self.stats.cache_misses += 1
            if registry is not None:
                registry.inc("merge_cache.miss")
        else:
            self._set_digests(None)

    def _adopt_native(self, digests: Optional[Sequence[bytes]]) -> None:
        """Post-receive bookkeeping once ``_packed`` holds the new state."""
        self._collections = None
        self._digests = list(digests) if digests is not None else None
        self._summary_fp = None
        self._state_fp = None

    def receive_packed(self, payloads: Sequence[PackedPayload]) -> None:
        """Native-tier receive: the full pipeline on column arrays.

        Mirrors :meth:`receive` decision-for-decision — fast path, memo
        lookup, certified no-op, then partition and merge — but consumes
        the payloads' packed columns directly and assembles the output
        rows with the batched scheme kernels, never constructing a
        ``Collection`` or summary object.  Stats deltas, emitted events
        and the resulting state bytes are identical to the object path
        (the native parity suite pins all three).
        """
        stats = self.stats
        stats.batches_received += 1
        total_in = 0
        for payload in payloads:
            total_in += len(payload)
        stats.collections_received += total_in
        if total_in == 0:
            return
        local = self._packed
        assert local is not None
        if len(payloads) == 1:
            first = payloads[0]
            in_quanta = first.quanta
            in_columns = first.columns
            in_digests = first.row_digests
        else:
            in_quanta = np.concatenate([p.quanta for p in payloads])
            in_columns = {
                name: np.concatenate([p.columns[name] for p in payloads])
                for name in payloads[0].columns
            }
            in_digests = None
            if all(p.row_digests is not None for p in payloads):
                in_digests = tuple(
                    digest
                    for p in payloads
                    for digest in p.row_digests  # type: ignore[union-attr]
                )
        m = len(local)
        pooled_size = m + total_in
        # Fast path: below the compression bound the partition is the
        # identity (same proof obligations as _try_fastpath).
        if pooled_size <= self.k and self.scheme.identity_below_k:
            min_quanta = min(int(local.quanta.min()), int(in_quanta.min()))
            if not self.quantization.is_minimum(min_quanta):
                digests = None
                if local.row_digests is not None and in_digests is not None:
                    digests = local.row_digests + in_digests
                self._packed = PackedState(
                    quanta=np.concatenate([local.quanta, in_quanta]),
                    columns={
                        name: np.concatenate([column, in_columns[name]])
                        for name, column in local.columns.items()
                    },
                    row_digests=digests,
                )
                self._adopt_native(digests)
                stats.fastpath_hits += 1
                registry = current_registry()
                if registry is not None:
                    registry.inc("partition.fastpath_hit")
                if self.event_sink is not None:
                    self.event_sink.emit(
                        Event(kind="fastpath", node=self.node_id, items=pooled_size)
                    )
                return
        stats.fastpath_misses += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("partition.fastpath_miss")
        cache = self.merge_cache
        key = None
        local_digests: Optional[tuple[bytes, ...]] = None
        if cache is not None:
            local_digests = self._ensure_packed_digests()
            if in_digests is None:
                digest_row = self.scheme.digest_row
                in_digests = tuple(
                    digest_row(in_columns, index) for index in range(total_in)
                )
            key = (
                id(self.scheme),
                self.k,
                self.quantization.unit,
                tuple(zip(local_digests, local.quanta.tolist())),
                tuple(zip(in_digests, in_quanta.tolist())),
            )
            entry = cache.lookup(key)
            if entry is not None:
                self._apply_cached_native(entry, pooled_size)
                return
            if self._try_certified_noop_packed(
                in_quanta, in_digests, local_digests, pooled_size
            ):
                return
        pooled_digests = None
        if local_digests is not None and in_digests is not None:
            pooled_digests = local_digests + in_digests
        pooled = PackedState(
            quanta=np.concatenate([local.quanta, in_quanta]),
            columns={
                name: np.concatenate([column, in_columns[name]])
                for name, column in local.columns.items()
            },
            row_digests=pooled_digests,
        )
        groups = self.scheme.partition_packed(pooled, self.k, self.quantization)
        stats.partition_calls += 1
        single_pos: list[int] = []
        single_idx: list[int] = []
        multi_pos: list[int] = []
        multi_groups: list[Sequence[int]] = []
        for position, group in enumerate(groups):
            if len(group) == 1:
                single_pos.append(position)
                single_idx.append(group[0])
            else:
                multi_pos.append(position)
                multi_groups.append(group)
        merged_columns: Optional[dict[str, np.ndarray]] = None
        if multi_groups:
            with span("scheme.merge_set"):
                merged_columns = self.scheme.merge_groups_columns(pooled, multi_groups)
        pooled_quanta = pooled.quanta
        if not multi_groups:
            gather = np.asarray(single_idx, dtype=np.intp)
            out_quanta = pooled_quanta[gather]
            out_columns = {
                name: column[gather] for name, column in pooled.columns.items()
            }
        else:
            # Python-int group sums off one tolist(): exact (no float
            # rounding possible) and far cheaper than a fancy-indexed
            # numpy gather per tiny group.
            quanta_list = pooled_quanta.tolist()
            if not single_pos:
                assert merged_columns is not None
                out_quanta = np.fromiter(
                    (sum(quanta_list[i] for i in g) for g in groups),
                    dtype=np.int64,
                    count=len(groups),
                )
                out_columns = merged_columns
            else:
                assert merged_columns is not None
                count = len(groups)
                sp = np.asarray(single_pos, dtype=np.intp)
                si = np.asarray(single_idx, dtype=np.intp)
                mp = np.asarray(multi_pos, dtype=np.intp)
                out_quanta = np.empty(count, dtype=np.int64)
                out_quanta[sp] = pooled_quanta[si]
                for position, group in zip(multi_pos, multi_groups):
                    out_quanta[position] = sum(quanta_list[i] for i in group)
                out_columns = {}
                for name, column in pooled.columns.items():
                    out = np.empty((count,) + column.shape[1:], dtype=column.dtype)
                    out[sp] = column[si]
                    out[mp] = merged_columns[name]
                    out_columns[name] = out
        sink = self.event_sink
        for group in groups:
            if len(group) > 1:
                stats.merges += 1
                if sink is not None:
                    sink.emit(
                        Event(kind="merge", node=self.node_id, items=len(group))
                    )
        out_digests: Optional[tuple[bytes, ...]] = None
        if key is not None:
            assert pooled_digests is not None
            digest_row = self.scheme.digest_row
            collected: list[bytes] = []
            merged_row = 0
            for group in groups:
                if len(group) == 1:
                    collected.append(pooled_digests[group[0]])
                else:
                    assert merged_columns is not None
                    collected.append(digest_row(merged_columns, merged_row))
                    merged_row += 1
            out_digests = tuple(collected)
        self._packed = PackedState(
            quanta=out_quanta, columns=out_columns, row_digests=out_digests
        )
        self._adopt_native(out_digests)
        if key is not None:
            assert cache is not None and out_digests is not None
            cache.store(
                key,
                CachedReceive(
                    summaries=None,
                    digests=out_digests,
                    quanta=tuple(out_quanta.tolist()),
                    group_sizes=tuple(len(group) for group in groups),
                    columns=dict(out_columns),
                ),
            )
            stats.cache_misses += 1
            if registry is not None:
                registry.inc("merge_cache.miss")

    def _apply_cached_native(self, entry: CachedReceive, pooled_size: int) -> None:
        """Replay a memoised outcome straight into the packed state."""
        quanta = np.fromiter(entry.quanta, dtype=np.int64, count=len(entry.quanta))
        if entry.columns is not None:
            # Columns are shared, never mutated in place (splits rebuild
            # only the quanta vector; receipts assemble fresh rows).
            columns = entry.columns
        else:
            assert entry.summaries is not None
            columns = self.scheme.pack_summaries(list(entry.summaries))
        self._packed = PackedState(
            quanta=quanta, columns=columns, row_digests=entry.digests
        )
        self._adopt_native(entry.digests)
        self.stats.partition_calls += 1
        self.stats.cache_memo_hits += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("merge_cache.hit")
        sink = self.event_sink
        for size in entry.group_sizes:
            if size > 1:
                self.stats.merges += 1
                if sink is not None:
                    sink.emit(Event(kind="merge", node=self.node_id, items=size))
        if sink is not None:
            sink.emit(
                Event(
                    kind="cache",
                    node=self.node_id,
                    items=pooled_size,
                    extra={"path": "memo"},
                )
            )

    def _try_certified_noop_packed(
        self,
        in_quanta: np.ndarray,
        incoming_digests: tuple[bytes, ...],
        local_digests: tuple[bytes, ...],
        pooled_size: int,
    ) -> bool:
        """The certified no-op short-circuit on packed state.

        Same proof obligations and outcome as :meth:`_try_certified_noop`
        (see its docstring for the soundness argument); operates on the
        packed quanta vector and row digests instead of collection
        objects, and only unpacks summaries when a certificate actually
        has to be built (once per location set per run).
        """
        cache = self.merge_cache
        assert cache is not None
        local = self._packed
        assert local is not None
        m = len(local)
        if len(set(local_digests)) != m or m > self.k:
            return False
        local_index = {digest: i for i, digest in enumerate(local_digests)}
        for digest in incoming_digests:
            if digest not in local_index:
                return False
        if pooled_size <= self.k:
            return False
        style = self.scheme.identity_partition_style
        if style is None:
            return False
        if style == "greedy" and m != self.k:
            # The greedy merge loop stops at exactly k groups; with fewer
            # locations than k it leaves duplicates uncoalesced.
            return False
        is_min = self.quantization.is_minimum
        local_quanta = local.quanta.tolist()
        totals = []
        for quanta in local_quanta:
            if is_min(quanta):
                return False
            totals.append(quanta)
        counts = [1] * m
        incoming_quanta = in_quanta.tolist()
        for digest, quanta in zip(incoming_digests, incoming_quanta):
            if is_min(quanta):
                return False
            index = local_index[digest]
            totals[index] += quanta
            counts[index] += 1
        sorted_digests = tuple(sorted(local_digests))
        certificate = cache.certificate_lookup(sorted_digests)
        if certificate is None:
            unpack = self.scheme.unpack_summary
            certificate = cache.certificate_for(
                self.scheme,
                sorted_digests,
                tuple(
                    unpack(local.columns, local_index[digest])
                    for digest in sorted_digests
                ),
            )
        if not certificate.valid:
            return False
        if style == "em":
            # Replicate the seeding: heaviest pooled component first
            # (strict first-index argmax over locals-then-incoming, the
            # pooled order partition_packed would see), then the maximin
            # walk over locations; then check the E-step margins at the
            # actual mixing weights.
            best_quanta = -1
            best_digest = local_digests[0]
            for digest, quanta in zip(local_digests, local_quanta):
                if quanta > best_quanta:
                    best_quanta = quanta
                    best_digest = digest
            for digest, quanta in zip(incoming_digests, incoming_quanta):
                if quanta > best_quanta:
                    best_quanta = quanta
                    best_digest = digest
            ranks = tuple(local_index[digest] for digest in certificate.locations)
            seed_order = certificate.seed_order(
                certificate.index_of[best_digest], ranks
            )
            if seed_order is None:
                return False
            log_totals = [0.0] * m
            for digest, index in local_index.items():
                log_totals[certificate.index_of[digest]] = math.log(totals[index])
            if not certificate.margin_ok(log_totals):
                return False
            order_digests = tuple(
                certificate.locations[index] for index in seed_order
            )
        else:
            order_digests = tuple(local_digests)
        self._packed = PackedState(
            quanta=np.fromiter(
                (totals[local_index[digest]] for digest in order_digests),
                dtype=np.int64,
                count=m,
            ),
            columns=certificate.columns_for(order_digests, self.scheme),
            row_digests=order_digests,
        )
        self._adopt_native(order_digests)
        self.stats.partition_calls += 1
        self.stats.cache_noop_hits += 1
        cache.record_noop()
        registry = current_registry()
        if registry is not None:
            registry.inc("merge_cache.noop")
        sink = self.event_sink
        for digest in order_digests:
            if counts[local_index[digest]] > 1:
                self.stats.merges += 1
                if sink is not None:
                    sink.emit(
                        Event(
                            kind="merge",
                            node=self.node_id,
                            items=counts[local_index[digest]],
                        )
                    )
        if sink is not None:
            sink.emit(
                Event(
                    kind="cache",
                    node=self.node_id,
                    items=pooled_size,
                    extra={"path": "noop"},
                )
            )
        return True

    def _apply_cached(self, entry: CachedReceive, pooled_size: int) -> None:
        """Replay a memoised receive outcome (byte-identical by key design)."""
        if entry.summaries is not None:
            summaries: Sequence[Any] = entry.summaries
        else:
            # Stored by a native-tier node that never built the objects;
            # unpack them from the packed columns (byte-equal by contract).
            assert entry.columns is not None
            unpack = self.scheme.unpack_summary
            summaries = [
                unpack(entry.columns, index) for index in range(len(entry.quanta))
            ]
        self._collections = [
            Collection(summary=summary, quanta=quanta)
            for summary, quanta in zip(summaries, entry.quanta)
        ]
        if self.packed:
            quanta = np.fromiter(
                entry.quanta, dtype=np.int64, count=len(entry.quanta)
            )
            if entry.columns is not None:
                # Columns are shared, never mutated in place (splits
                # rebuild only the quanta vector; receipts re-pack).
                self._packed = PackedState(
                    quanta=quanta, columns=entry.columns, row_digests=entry.digests
                )
            else:
                self._packed = self._pack(self._collections)
                self._packed.row_digests = entry.digests
        self._set_digests(list(entry.digests))
        # Replay the stats/event deltas the uncached pipeline would produce.
        self.stats.partition_calls += 1
        self.stats.cache_memo_hits += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("merge_cache.hit")
        sink = self.event_sink
        for size in entry.group_sizes:
            if size > 1:
                self.stats.merges += 1
                if sink is not None:
                    sink.emit(Event(kind="merge", node=self.node_id, items=size))
        if sink is not None:
            sink.emit(
                Event(
                    kind="cache",
                    node=self.node_id,
                    items=pooled_size,
                    extra={"path": "memo"},
                )
            )

    def _try_certified_noop(
        self,
        incoming: Sequence[Collection],
        local_digests: list[bytes],
        incoming_digests: list[bytes],
    ) -> bool:
        """Absorb a receipt whose collections the node already holds.

        Applies when every incoming digest matches a distinct local
        collection: the pooled set then consists of ``m`` *locations*
        (distinct byte patterns) with duplicates, and — under conditions
        certified per location set by
        :class:`~repro.core.fingerprint.IdentityCertificate` — the
        scheme's partition provably groups the pooled components exactly
        by location, with every merge reproducing the local summary bytes
        (identical inputs pool exactly; see the scheme-level shortcuts).
        The receipt then reduces to quanta bookkeeping: bump each
        location's count, reorder per the certified output order, and
        skip the partition/merge pipeline entirely.  Any condition that
        cannot be certified falls through to the real pipeline, so this
        path is sound by construction, not by testing alone.
        """
        cache = self.merge_cache
        assert cache is not None
        local = self._collections
        m = len(local)
        if len(set(local_digests)) != m or m > self.k:
            return False
        local_index = {digest: i for i, digest in enumerate(local_digests)}
        for digest in incoming_digests:
            if digest not in local_index:
                return False
        pooled_size = m + len(incoming)
        if pooled_size <= self.k:
            return False
        style = self.scheme.identity_partition_style
        if style is None:
            return False
        if style == "greedy" and m != self.k:
            # The greedy merge loop stops at exactly k groups; with fewer
            # locations than k it leaves duplicates uncoalesced.
            return False
        # Pool per-location quanta and member counts; bail anywhere near
        # the quantisation floor, where conformance rule 2 (and its
        # repair passes) could reshape the partition.
        is_min = self.quantization.is_minimum
        totals = []
        for collection in local:
            if is_min(collection.quanta):
                return False
            totals.append(collection.quanta)
        counts = [1] * m
        for digest, collection in zip(incoming_digests, incoming):
            if is_min(collection.quanta):
                return False
            index = local_index[digest]
            totals[index] += collection.quanta
            counts[index] += 1
        sorted_digests = tuple(sorted(local_digests))
        certificate = cache.certificate_for(
            self.scheme,
            sorted_digests,
            tuple(local[local_index[digest]].summary for digest in sorted_digests),
        )
        if not certificate.valid:
            return False
        if style == "em":
            # Replicate the seeding: heaviest pooled component first
            # (strict first-index argmax over locals-then-incoming, the
            # pooled order partition_packed would see), then the maximin
            # walk over locations; then check the E-step margins at the
            # actual mixing weights.  Exact integer quanta (< 2**53)
            # make the argmax and the log-weights exact.
            best_quanta = -1
            best_digest = local_digests[0]
            for digest, collection in zip(local_digests, local):
                if collection.quanta > best_quanta:
                    best_quanta = collection.quanta
                    best_digest = digest
            for digest, collection in zip(incoming_digests, incoming):
                if collection.quanta > best_quanta:
                    best_quanta = collection.quanta
                    best_digest = digest
            ranks = tuple(
                local_index[digest] for digest in certificate.locations
            )
            seed_order = certificate.seed_order(
                certificate.index_of[best_digest], ranks
            )
            if seed_order is None:
                return False
            log_totals = [0.0] * m
            for digest, index in local_index.items():
                log_totals[certificate.index_of[digest]] = math.log(totals[index])
            if not certificate.margin_ok(log_totals):
                return False
            order_digests = tuple(
                certificate.locations[index] for index in seed_order
            )
        else:
            # Greedy: duplicates coalesce first (zero distance is the
            # strict minimum), the loop stops at exactly k = m groups,
            # and surviving group leaders keep first-occurrence order —
            # the local collection order, since incoming ⊆ local.
            order_digests = tuple(local_digests)
        new_collections = []
        for digest in order_digests:
            index = local_index[digest]
            if counts[index] == 1:
                new_collections.append(local[index])
            else:
                new_collections.append(
                    Collection(summary=local[index].summary, quanta=totals[index])
                )
        self._collections = new_collections
        if self.packed:
            self._packed = PackedState(
                quanta=np.fromiter(
                    (collection.quanta for collection in new_collections),
                    dtype=np.int64,
                    count=m,
                ),
                columns=certificate.columns_for(order_digests, self.scheme),
                row_digests=order_digests,
            )
        self._set_digests(list(order_digests))
        # Replay the stats/event deltas of the pipeline this receipt skipped.
        self.stats.partition_calls += 1
        self.stats.cache_noop_hits += 1
        cache.record_noop()
        registry = current_registry()
        if registry is not None:
            registry.inc("merge_cache.noop")
        sink = self.event_sink
        for digest in order_digests:
            if counts[local_index[digest]] > 1:
                self.stats.merges += 1
                if sink is not None:
                    sink.emit(
                        Event(
                            kind="merge",
                            node=self.node_id,
                            items=counts[local_index[digest]],
                        )
                    )
        if sink is not None:
            sink.emit(
                Event(
                    kind="cache",
                    node=self.node_id,
                    items=pooled_size,
                    extra={"path": "noop"},
                )
            )
        return True

    def _try_fastpath(
        self, big_set: list[Collection], incoming: Sequence[Collection]
    ) -> bool:
        """Adopt the pooled set unpartitioned when that is provably correct.

        When the pooled set has at most ``k`` collections and the scheme
        declares :attr:`~repro.core.scheme.SummaryScheme.identity_below_k`,
        ``partition`` would return singleton groups in index order — so the
        partition/merge machinery can be skipped outright.  The identity
        claim only holds when conformance rule 2 cannot fire, i.e. when no
        minimum-weight collection is present (or the set is a single
        collection); otherwise we fall through to the real partition.
        """
        size = len(big_set)
        if size > self.k or not self.scheme.identity_below_k:
            return False
        if size > 1:
            min_quanta = min(collection.quanta for collection in big_set)
            if self.quantization.is_minimum(min_quanta):
                return False
        if self.validate:
            groups = [[index] for index in range(size)]
            validate_partition(groups, big_set, self.k, self.quantization)
        self._collections = big_set
        if self._packed is not None:
            self._packed = PackedState.concat(self._packed, self._pack(incoming))
        self.stats.fastpath_hits += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("partition.fastpath_hit")
        if self.event_sink is not None:
            self.event_sink.emit(
                Event(kind="fastpath", node=self.node_id, items=size)
            )
        return True

    def _merge_group(
        self,
        big_set: list[Collection],
        packed_set: Optional[PackedState],
        group: Sequence[int],
    ) -> Collection:
        """Merge one partition group into a single collection (line 11)."""
        if len(group) == 1:
            # Merging a singleton is the identity under R4; skip the
            # arithmetic so repeated gossip cannot accumulate float churn.
            return big_set[group[0]]
        members = [big_set[index] for index in group]
        with span("scheme.merge_set"):
            if packed_set is not None:
                summary = self.scheme.merge_set_packed(packed_set, group)
            else:
                summary = self.scheme.merge_set(
                    [(member.summary, float(member.quanta)) for member in members]
                )
        quanta = sum(member.quanta for member in members)
        aux = None
        if members[0].aux is not None:
            aux = MixtureVector.sum_of(member.aux for member in members)
        self.stats.merges += 1
        if self.event_sink is not None:
            self.event_sink.emit(
                Event(kind="merge", node=self.node_id, items=len(members))
            )
        return Collection(summary=summary, quanta=quanta, aux=aux)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        count = (
            len(self._packed)
            if self._collections is None and self._packed is not None
            else len(self._collections or ())
        )
        return (
            f"ClassifierNode(id={self.node_id}, collections={count}, "
            f"quanta={self.total_quanta})"
        )
