"""Classifications: the per-node estimate of the global data partition.

A *classification* (Definition 2) is a set of weighted collection
summaries.  Each node maintains one at all times; the distributed
classification problem (Definition 4) asks that all these per-node
classifications converge to a single classification of the complete input
set.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.core.collection import Collection
from repro.core.weights import Quantization

__all__ = ["Classification"]


class Classification:
    """An ordered container of collections with weight bookkeeping.

    The order of collections carries no meaning (a classification is a
    set); it is kept stable purely for reproducibility of iteration.
    """

    __slots__ = ("collections",)

    def __init__(self, collections: Sequence[Collection]) -> None:
        self.collections = list(collections)
        if not self.collections:
            raise ValueError("a classification must contain at least one collection")

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.collections)

    def __iter__(self) -> Iterator[Collection]:
        return iter(self.collections)

    def __getitem__(self, index: int) -> Collection:
        return self.collections[index]

    # ------------------------------------------------------------------
    # Weight bookkeeping
    # ------------------------------------------------------------------
    @property
    def total_quanta(self) -> int:
        """Total weight (in quanta) described by this classification."""
        return sum(collection.quanta for collection in self.collections)

    def total_weight(self, quantization: Quantization) -> float:
        return quantization.to_float(self.total_quanta)

    def relative_weights(self) -> np.ndarray:
        """Each collection's share of the total weight.

        Definition 3's second condition is phrased in terms of these
        relative weights, which is why they are a first-class accessor.
        """
        quanta = np.array([collection.quanta for collection in self.collections], dtype=float)
        return quanta / quanta.sum()

    def summaries(self) -> list[Any]:
        return [collection.summary for collection in self.collections]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def heaviest(self) -> Collection:
        """The collection holding the most weight.

        The robust-average application (Section 5.3.2) treats the heaviest
        of the ``k = 2`` collections as the "good" one and the rest as
        outliers.
        """
        return max(self.collections, key=lambda collection: collection.quanta)

    def sorted_by_weight(self) -> list[Collection]:
        """Collections ordered heaviest-first (stable)."""
        return sorted(self.collections, key=lambda collection: -collection.quanta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Classification({len(self.collections)} collections, {self.total_quanta} quanta)"
