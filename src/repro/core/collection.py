"""Collections: weighted, concisely summarised groups of input values.

A *collection* (Definition 1) is a set of weighted values.  The algorithm
never stores the values themselves — only a summary in the scheme's summary
domain ``S`` and the collection's total weight (Section 4.1's "slight abuse
of terminology").  Optionally a collection also carries its auxiliary
mixture vector, which *does* identify the constituent values; see
:mod:`repro.core.mixture`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.mixture import MixtureVector
from repro.core.weights import Quantization

__all__ = ["Collection"]


@dataclass(slots=True)
class Collection:
    """A summary-weight pair, optionally with provenance.

    Attributes
    ----------
    summary:
        The scheme-specific concise description of the collection's values
        (a centroid, a weighted Gaussian, a histogram, ...).
    quanta:
        The collection weight as an integer number of quanta (see
        :class:`~repro.core.weights.Quantization`).  Always positive.
    aux:
        Optional auxiliary mixture vector.  ``None`` unless provenance
        tracking was requested at node construction.
    digest:
        Optional content digest of ``summary`` (see
        :mod:`repro.core.fingerprint`), stamped by the producing node so
        receivers need not re-hash.  Valid for the object's lifetime
        because summaries are never mutated in place; not serialised —
        decoded collections start with ``None`` and are re-hashed on
        first use.
    """

    summary: Any
    quanta: int
    aux: Optional[MixtureVector] = None
    digest: Optional[bytes] = None

    def __post_init__(self) -> None:
        if not isinstance(self.quanta, int) or self.quanta <= 0:
            raise ValueError(f"collection weight must be a positive quanta count, got {self.quanta!r}")

    def weight(self, quantization: Quantization) -> float:
        """Real-valued weight of this collection on the given lattice."""
        return quantization.to_float(self.quanta)

    def split(self, quantization: Quantization) -> tuple["Collection", Optional["Collection"]]:
        """Split into (kept, sent) shares per Algorithm 1 lines 5-7.

        Both shares carry the *same summary*; only the weight (and the
        auxiliary vector, proportionally) is divided.  When the collection
        holds a single quantum the sent share would be empty, so ``None``
        is returned for it and the caller must not send anything — this is
        how quantisation stops Zeno executions.
        """
        kept_quanta, sent_quanta = quantization.split(self.quanta)
        if sent_quanta == 0:
            return self, None
        kept_aux = sent_aux = None
        if self.aux is not None:
            kept_aux = self.aux.scaled(kept_quanta, self.quanta)
            sent_aux = self.aux.scaled(sent_quanta, self.quanta)
        kept = Collection(
            summary=self.summary, quanta=kept_quanta, aux=kept_aux, digest=self.digest
        )
        sent = Collection(
            summary=self.summary, quanta=sent_quanta, aux=sent_aux, digest=self.digest
        )
        return kept, sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Collection(quanta={self.quanta}, summary={self.summary!r})"
