"""Content-addressed classification fingerprints and the merge cache.

Gossip runs spend their tails recomputing work whose inputs the run has
already seen: past the convergence knee, almost every receipt pools
byte-identical summaries and produces byte-identical output.  This module
makes that redundancy *addressable*:

- :func:`digest_arrays` hashes a summary's packed arrays into a stable
  16-byte content digest (schemes expose it via
  :meth:`~repro.core.scheme.SummaryScheme.summary_digest`);
- :func:`combine_digests` / :func:`state_fingerprint_of` fold per-collection
  digests order-insensitively into one classification fingerprint —
  summary-level (what classes a node holds) or state-level (classes plus
  quanta);
- :class:`MergeCache` is the run-scoped cache shared by every node of a
  :class:`~repro.network.kernel.SimulationKernel`.  It has two layers:

  1. **Exact receive memoisation** — an LRU table keyed by the receiver's
     *ordered* ``(digest, quanta)`` state and the ordered incoming
     digests.  The partition pipeline is a deterministic pure function of
     that key (the EM reduction never consults its RNG; the greedy
     partition is deterministic), so replaying a stored outcome is
     byte-identical to recomputing it.  Order matters in the key — EM
     breaks ties by index — which is why the memo key is *stricter* than
     the order-insensitive fingerprint used for quiescence.
  2. **Identity certificates** — per location-set proofs that a receipt
     whose incoming digests are a subset of the local ones is a *no-op*
     up to quanta bookkeeping.  The certificate pins the weight-independent
     geometry (pairwise-distinct locations, maximin seed orders, E-step
     score margins); a cheap pure-Python check per receipt then verifies
     the weight-dependent remainder.  See ``docs/performance.md`` for the
     soundness argument.

Both layers are only consulted when the scheme declares
``supports_fingerprints``; both default on (the ``REPRO_MERGE_CACHE``
environment toggle turns them off, ``REPRO_MERGE_CACHE_SIZE`` bounds the
memo table).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.scheme import SummaryScheme

__all__ = [
    "digest_arrays",
    "combine_digests",
    "state_fingerprint_of",
    "CachedReceive",
    "IdentityCertificate",
    "MergeCache",
    "merge_cache_default",
    "merge_cache_size_default",
]

#: Digest width in bytes; 128 bits makes accidental collisions across a
#: run's summary population (thousands of distinct summaries at most)
#: astronomically unlikely.
DIGEST_SIZE = 16

#: Relative / absolute slack subtracted from certified score margins to
#: absorb the float dust between the certificate's exact per-location
#: moments and the EM M-step's segment-sum moments (relative error
#: ~1e-12; the slack is four orders of magnitude more conservative).
_MARGIN_SLACK_REL = 1e-6
_MARGIN_SLACK_ABS = 1e-9


def merge_cache_default() -> bool:
    """Whether networks build a merge cache by default.

    On unless ``REPRO_MERGE_CACHE`` is set to ``0``/``false``/``no``/``off``
    (mirroring ``REPRO_PACKED``).  The determinism gate flips this to pin
    cache-on traces against the cache-off reference.
    """
    return os.environ.get("REPRO_MERGE_CACHE", "1").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


def merge_cache_size_default() -> int:
    """Memo-table bound; the ``REPRO_MERGE_CACHE_SIZE`` knob (default 4096)."""
    return int(os.environ.get("REPRO_MERGE_CACHE_SIZE", "4096"))


#: Shape-prefix bytes are identical for every row of a column, so the
#: tuple-repr encoding is interned rather than rebuilt per digest call.
_SHAPE_PREFIXES: dict[tuple, bytes] = {}


def digest_arrays(*arrays: np.ndarray) -> bytes:
    """Stable content digest of one or more float arrays.

    Hashes shape and raw bytes, so two summaries collide only when their
    packed representations are byte-identical — exactly the equivalence
    the merge cache needs (byte-equal inputs give byte-equal outputs).
    """
    hasher = blake2b(digest_size=DIGEST_SIZE)
    for array in arrays:
        contiguous = np.ascontiguousarray(array, dtype=float)
        shape = contiguous.shape
        prefix = _SHAPE_PREFIXES.get(shape)
        if prefix is None:
            prefix = _SHAPE_PREFIXES.setdefault(shape, repr(shape).encode())
        hasher.update(prefix)
        hasher.update(contiguous.tobytes())
    return hasher.digest()


def combine_digests(digests: Iterable[bytes]) -> bytes:
    """Order-insensitive fold of per-collection digests (sorted, not XORed,
    so duplicate digests cannot cancel)."""
    hasher = blake2b(digest_size=DIGEST_SIZE)
    for digest in sorted(digests):
        hasher.update(digest)
    return hasher.digest()


def state_fingerprint_of(pairs: Iterable[Tuple[bytes, int]]) -> bytes:
    """Order-insensitive fingerprint of ``(summary digest, quanta)`` pairs."""
    hasher = blake2b(digest_size=DIGEST_SIZE)
    for digest, quanta in sorted(pairs):
        hasher.update(digest)
        hasher.update(int(quanta).to_bytes(16, "big"))
    return hasher.digest()


@dataclass(frozen=True)
class CachedReceive:
    """One memoised receive outcome, in output order.

    ``summaries`` are the immutable summary objects of the resulting
    collections (shared freely — nothing in the pipeline mutates a
    summary), or ``None`` when the producer ran the native tier and
    never built them (consumers then unpack from ``columns`` on
    demand); ``columns`` are the producing node's packed column arrays
    for the same rows, or ``None`` when the producer ran the object path.
    At least one of the two is always present.  ``group_sizes`` replays
    the ``merge`` events and stats deltas: one merge per group of
    size > 1.
    """

    summaries: Optional[Tuple[Any, ...]]
    digests: Tuple[bytes, ...]
    quanta: Tuple[int, ...]
    group_sizes: Tuple[int, ...]
    columns: Optional[Dict[str, np.ndarray]]


class IdentityCertificate:
    """Weight-independent proof obligations for one set of locations.

    A *location* is a distinct summary byte-pattern.  Built once per
    distinct local digest set and cached on the :class:`MergeCache`, the
    certificate answers, for any receipt whose pooled multiset lives on
    these locations: would the scheme's partition group the pooled
    components exactly by location, and in which output order?

    For EM-style schemes it stores the pairwise E-step score margins
    ``margins[a][b] = score(a under a) - score(a under b)`` at uniform
    group weights (the geometry; mixing-weight terms cancel) plus the
    location means for the maximin seed walk.  For greedy-style schemes
    pairwise distinctness is the whole geometric content — the output
    order is first-occurrence, checked by the caller.
    """

    __slots__ = (
        "locations",
        "index_of",
        "summaries",
        "style",
        "valid",
        "_means",
        "_margins",
        "_slack",
        "_seed_orders",
        "_columns",
        "_threshold_matrix",
    )

    def __init__(
        self,
        locations: Tuple[bytes, ...],
        summaries: Tuple[Any, ...],
        style: str,
        valid: bool,
        means: Optional[np.ndarray] = None,
        margins: Optional[np.ndarray] = None,
    ) -> None:
        self.locations = locations
        self.index_of = {digest: i for i, digest in enumerate(locations)}
        self.summaries = summaries
        self.style = style
        self.valid = valid
        self._means = means
        self._margins: Optional[list[list[float]]] = None
        self._slack: Optional[list[list[float]]] = None
        if margins is not None:
            self._margins = margins.tolist()
            self._slack = (
                _MARGIN_SLACK_REL * (1.0 + np.abs(margins)) + _MARGIN_SLACK_ABS
            ).tolist()
        self._seed_orders: Dict[
            Tuple[int, Tuple[int, ...]], Optional[Tuple[int, ...]]
        ] = {}
        self._columns: Dict[Tuple[bytes, ...], Dict[str, np.ndarray]] = {}
        self._threshold_matrix: Optional[np.ndarray] = None

    def seed_order(
        self, first: int, ranks: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        """Maximin seed order starting from location ``first``.

        Replicates :func:`repro.ml.reduction._maximin_seeds` on the
        distinct location means.  Because every pooled component is
        byte-identical to its location, the per-row squared distances the
        real walk computes coincide bitwise with the per-location ones
        here.  The real walk breaks cross-location argmax ties by lowest
        *pooled* index; under the certified preconditions (local digests
        distinct, incoming a subset of local, locals pooled first) the
        lowest pooled index of a location is its position in the local
        collection order, which the caller passes as ``ranks[j]`` for
        location ``j`` — so ties resolve to the tied location with the
        smallest rank, exactly as ``np.argmax`` would.
        """
        key = (first, ranks)
        if key in self._seed_orders:
            return self._seed_orders[key]
        means = self._means
        assert means is not None
        m = means.shape[0]
        chosen = [first]
        closest_sq = np.sum((means - means[first]) ** 2, axis=1)
        order: Optional[Tuple[int, ...]] = None
        while len(chosen) < m:
            top = closest_sq.max()
            if top <= 0.0:  # pragma: no cover - distances certified positive
                break
            candidate = min(
                (int(i) for i in np.flatnonzero(closest_sq == top)),
                key=lambda i: ranks[i],
            )
            chosen.append(candidate)
            closest_sq = np.minimum(
                closest_sq, np.sum((means - means[candidate]) ** 2, axis=1)
            )
        if len(chosen) == m:
            order = tuple(chosen)
        self._seed_orders[key] = order
        return order

    def margin_ok(self, log_totals: Sequence[float]) -> bool:
        """Do the actual mixing weights keep every certified margin?

        ``log_totals[j]`` is ``log`` of location ``j``'s pooled quanta
        total.  Identity grouping survives the E-step iff for every
        ordered pair ``a != b``::

            log pi_b - log pi_a < margins[a][b]

        (the shared ``- log W`` cancels in the difference).  The slack
        absorbs segment-sum dust in the EM's group moments and log
        rounding; a failed check is always safe — the receipt just runs
        the real pipeline.
        """
        m = len(log_totals)
        if m == 1:
            return True  # a single location is one group regardless of weight
        margins = self._margins
        slack = self._slack
        assert margins is not None and slack is not None
        for a in range(m):
            log_a = log_totals[a]
            margin_row = margins[a]
            slack_row = slack[a]
            for b in range(m):
                if b == a:
                    continue
                if log_totals[b] - log_a >= margin_row[b] - slack_row[b]:
                    return False
        return True

    def margin_threshold_matrix(self) -> Optional[np.ndarray]:
        """``margins - slack`` as an ``(m, m)`` array, ``+inf`` diagonal.

        The batched form of :meth:`margin_ok`: a log-total vector ``t``
        (in location-index order) passes iff
        ``(t[None, :] - t[:, None] < matrix).all()`` — the diagonal is
        ``+inf`` so the zero self-difference never fails.  Cached; None
        when the certificate carries no margins (greedy style).
        """
        matrix = self._threshold_matrix
        if matrix is None:
            if self._margins is None or self._slack is None:
                return None
            matrix = np.asarray(self._margins) - np.asarray(self._slack)
            np.fill_diagonal(matrix, np.inf)
            self._threshold_matrix = matrix
        return matrix

    def columns_for(
        self, order: Tuple[bytes, ...], scheme: "SummaryScheme"
    ) -> Dict[str, np.ndarray]:
        """Packed column arrays for the locations in ``order`` (cached).

        The arrays are shared across every receive that lands on the same
        output order — safe because packed columns are never mutated in
        place (splits rebuild only the quanta vector; merges re-pack).
        """
        columns = self._columns.get(order)
        if columns is None:
            columns = scheme.pack_summaries(
                [self.summaries[self.index_of[digest]] for digest in order]
            )
            if len(self._columns) >= 32:  # pathological order churn guard
                self._columns.clear()
            self._columns[order] = columns
        return columns


def _pairwise_distances_positive(rows: np.ndarray) -> bool:
    """Whether every off-diagonal pairwise squared distance is > 0."""
    deltas = rows[:, None, :] - rows[None, :, :]
    distances_sq = np.einsum("abd,abd->ab", deltas, deltas)
    np.fill_diagonal(distances_sq, np.inf)
    return bool(distances_sq.min() > 0.0) if rows.shape[0] > 1 else True


def _build_certificate(
    scheme: "SummaryScheme",
    locations: Tuple[bytes, ...],
    summaries: Tuple[Any, ...],
) -> IdentityCertificate:
    """Construct (and validate) the certificate for one location set."""
    style = scheme.identity_partition_style
    if style not in ("em", "greedy"):
        return IdentityCertificate(locations, summaries, style or "none", valid=False)
    columns = scheme.pack_summaries(list(summaries))
    if style == "greedy":
        matrix = next(iter(columns.values()))
        positions = np.atleast_2d(np.asarray(matrix, dtype=float))
        # The greedy argument needs strictly positive cross-location
        # distances (zero-distance duplicate pairs must be the unique
        # minimum), so check computed distances rather than byte
        # inequality — distinct rows can still underflow to distance 0.
        if not _pairwise_distances_positive(positions):
            return IdentityCertificate(locations, summaries, style, valid=False)
        return IdentityCertificate(locations, summaries, style, valid=True)

    # EM style: needs mean/cov columns (the Gaussian schemes' packing).
    if "mean" not in columns or "cov" not in columns:
        return IdentityCertificate(locations, summaries, style, valid=False)
    means = np.atleast_2d(np.asarray(columns["mean"], dtype=float))
    covs = np.asarray(columns["cov"], dtype=float)
    if covs.ndim == 2:
        covs = covs[None, :, :]
    m = means.shape[0]
    # Seed-distance and initial-assignment uniqueness need strictly
    # positive pairwise mean distances as *computed* (not merely
    # byte-distinct means, which can underflow to distance zero).
    if not _pairwise_distances_positive(means):
        return IdentityCertificate(locations, summaries, style, valid=False)
    if m == 1:
        return IdentityCertificate(locations, summaries, style, valid=True, means=means)
    # Score margins at uniform group weights: the mixing-weight term is
    # constant across groups there, so scores[a, a] - scores[a, b] is the
    # pure geometry of "component at location a under group b" — computed
    # with the same regularised-Cholesky scoring the EM E-step runs.
    from repro.ml.reduction import _score_features, _score_matrix  # noqa: PLC0415

    scores = _score_matrix(
        _score_features(means, covs), means.shape[1], np.ones(m), means, covs
    )
    margins = scores.diagonal()[:, None] - scores
    return IdentityCertificate(
        locations, summaries, style, valid=True, means=means, margins=margins
    )


class MergeCache:
    """Run-scoped, node-shared cache of receive outcomes and certificates.

    Owned by the :class:`~repro.network.kernel.SimulationKernel` (which
    folds its counters into :class:`~repro.network.metrics.NetworkMetrics`)
    and consulted by every :class:`~repro.core.node.ClassifierNode` of the
    run from inside ``receive``.  Byte-identity contract: a cache hit —
    memo replay or certified no-op — produces exactly the collections,
    packed state, stats deltas and ``merge`` events the uncached pipeline
    would have produced.  The parity and determinism suites pin this with
    the cache on (the default).
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is None:
            max_entries = merge_cache_size_default()
        if max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries
        self._memo: "OrderedDict[Any, CachedReceive]" = OrderedDict()
        self._certificates: "OrderedDict[Tuple[bytes, ...], IdentityCertificate]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.noop_hits = 0

    def __len__(self) -> int:
        return len(self._memo)

    def lookup(self, key: Any) -> Optional[CachedReceive]:
        """Memo lookup; bumps the hit counter and LRU recency on success."""
        entry = self._memo.get(key)
        if entry is None:
            return None
        self._memo.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: Any, entry: CachedReceive) -> None:
        """Record a slow-path outcome; evicts the LRU entry at capacity."""
        self.misses += 1
        if key in self._memo:
            self._memo.move_to_end(key)
            return
        if len(self._memo) >= self.max_entries:
            self._memo.popitem(last=False)
            self.evictions += 1
        self._memo[key] = entry

    def record_noop(self) -> None:
        self.noop_hits += 1

    def certificate_lookup(
        self, locations: Tuple[bytes, ...]
    ) -> Optional[IdentityCertificate]:
        """An already-built certificate, or ``None`` — never builds one.

        The native receive tier probes with this first so it only
        unpacks summary objects (the build inputs) on an actual miss.
        """
        certificate = self._certificates.get(locations)
        if certificate is not None:
            self._certificates.move_to_end(locations)
        return certificate

    def certificate_for(
        self,
        scheme: "SummaryScheme",
        locations: Tuple[bytes, ...],
        summaries: Tuple[Any, ...],
    ) -> IdentityCertificate:
        """The (possibly invalid) certificate for a sorted location set."""
        certificate = self._certificates.get(locations)
        if certificate is None:
            certificate = _build_certificate(scheme, locations, summaries)
            if len(self._certificates) >= 512:
                self._certificates.popitem(last=False)
            self._certificates[locations] = certificate
        else:
            self._certificates.move_to_end(locations)
        return certificate

    def counters(self) -> dict[str, int]:
        """Snapshot for metrics/report plumbing."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_noop_hits": self.noop_hits,
        }
