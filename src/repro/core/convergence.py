"""Convergence measurement machinery (Definition 3 and Section 6).

The paper proves convergence but, being asynchronous and topology-agnostic,
cannot bound its time; experiments therefore *measure* it.  This module
provides the instruments:

- :func:`classification_distance` — an earth-mover distance between two
  classifications over the scheme's summary pseudo-metric.  Definition 3's
  convergence (summaries approach their destinations *and* relative
  weights approach the destination weights) is exactly convergence of this
  distance to zero, so it is the single scalar all experiments track.
- :func:`match_collections` — the mapping ``psi_t`` of Definition 3 as a
  concrete minimum-cost assignment.
- :func:`max_reference_angles` / :func:`pool_collections` — the Lemma 2
  monotonicity invariant over the global pool of mixture vectors.
- :class:`ConvergenceDetector` — a practical stop rule: the run has
  converged once every node's classification has stopped moving.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment, linprog

from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.node import ClassifierNode
from repro.core.scheme import SummaryScheme

__all__ = [
    "classification_distance",
    "match_collections",
    "disagreement",
    "pool_collections",
    "max_reference_angles",
    "ConvergenceDetector",
]


def classification_distance(
    a: Classification,
    b: Classification,
    scheme: SummaryScheme,
) -> float:
    """Earth-mover distance between two classifications.

    Each classification is viewed as a discrete probability distribution
    placing its collections' *relative* weights on their summaries; the
    ground metric is the scheme's ``d_S``.  Relative weights make the
    distance insensitive to absolute weight scale, matching Definition 3
    which constrains relative weights only.

    Solved exactly as a transportation linear program; with ``k`` bounded
    (typically <= 10 collections a side) the LP is trivial.
    """
    weights_a = a.relative_weights()
    weights_b = b.relative_weights()
    cost = np.array(
        [
            [scheme.distance(ca.summary, cb.summary) for cb in b]
            for ca in a
        ],
        dtype=float,
    )
    n_a, n_b = cost.shape
    if n_a == 1 and n_b == 1:
        return float(cost[0, 0])
    # Transportation LP: minimise sum f_ij c_ij with row sums weights_a and
    # column sums weights_b.  The final column constraint is linearly
    # dependent on the rest (both marginals sum to 1) and is dropped:
    # keeping it is redundant at best, and at worst the degenerate system
    # trips the solver's presolve into a spurious infeasibility when some
    # weights are many orders of magnitude below others.
    c = cost.reshape(-1)
    a_eq = []
    b_eq = []
    for i in range(n_a):
        row = np.zeros(n_a * n_b)
        row[i * n_b : (i + 1) * n_b] = 1.0
        a_eq.append(row)
        b_eq.append(weights_a[i])
    for j in range(n_b - 1):
        col = np.zeros(n_a * n_b)
        col[j::n_b] = 1.0
        a_eq.append(col)
        b_eq.append(weights_b[j])
    result = linprog(c, A_eq=np.array(a_eq), b_eq=np.array(b_eq), bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - the LP above is always feasible
        raise RuntimeError(f"transportation LP failed: {result.message}")
    # The solver may return a tiny negative objective (or -0.0) at
    # optimality; a distance is never negative.
    return max(0.0, float(result.fun))


def match_collections(
    a: Classification,
    b: Classification,
    scheme: SummaryScheme,
) -> list[tuple[int, int]]:
    """Minimum-cost one-to-one matching between two classifications.

    This is the concrete ``psi_t`` used by tests of Definition 3: pairs of
    (index in ``a``, index in ``b``) minimising total summary distance.
    When sizes differ, the surplus collections of the larger side stay
    unmatched (they correspond to collections destined to merge).
    """
    cost = np.array(
        [[scheme.distance(ca.summary, cb.summary) for cb in b] for ca in a],
        dtype=float,
    )
    rows, cols = linear_sum_assignment(cost)
    return list(zip(rows.tolist(), cols.tolist()))


def disagreement(
    nodes: Sequence[ClassifierNode],
    scheme: SummaryScheme,
    reference: Optional[Classification] = None,
) -> float:
    """Maximum classification distance from any node to a reference.

    With no explicit reference the first node's classification is used;
    Definition 4 requires this quantity to converge to zero for any choice
    of reference, so the choice does not matter asymptotically.
    """
    if not nodes:
        raise ValueError("disagreement requires at least one node")
    if reference is None:
        reference = nodes[0].classification
    return max(
        classification_distance(node.classification, reference, scheme) for node in nodes
    )


def pool_collections(nodes: Iterable[ClassifierNode], in_flight: Iterable[Collection] = ()) -> list[Collection]:
    """The global pool of Section 6.1: all collections at nodes and in channels."""
    pool: list[Collection] = []
    for node in nodes:
        pool.extend(node.classification.collections)
    pool.extend(in_flight)
    return pool


def max_reference_angles(pool: Sequence[Collection]) -> np.ndarray:
    """Per-axis maximal reference angle over the pool (Lemma 2's quantity).

    Requires auxiliary tracking; Lemma 2 proves each component of the
    returned vector is monotonically non-increasing along any execution.
    """
    if not pool:
        raise ValueError("empty pool has no reference angles")
    angle_rows = []
    for collection in pool:
        if collection.aux is None:
            raise ValueError("max_reference_angles requires aux tracking on all collections")
        angle_rows.append(collection.aux.reference_angles())
    return np.max(np.stack(angle_rows), axis=0)


class ConvergenceDetector:
    """Declares convergence when classifications stop moving.

    Call :meth:`update` once per round with the nodes; the detector
    compares every node's classification with its own previous round via
    :func:`classification_distance` and reports convergence once the
    maximum movement has stayed below ``tolerance`` for ``patience``
    consecutive rounds.

    Nodes whose state fingerprint (see :mod:`repro.core.fingerprint`)
    is unchanged since the previous round have movement exactly ``0.0``
    by construction, so the transportation LP is skipped for them — in
    a converged tail this short-circuits the whole O(n·k²) sweep.
    """

    def __init__(
        self,
        scheme: SummaryScheme,
        tolerance: float = 1e-6,
        patience: int = 3,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.scheme = scheme
        self.tolerance = tolerance
        self.patience = patience
        self._previous: dict[int, Classification] = {}
        self._previous_fp: dict[int, bytes] = {}
        self._quiet_rounds = 0
        self.last_movement: float = float("inf")

    def update(self, nodes: Iterable[ClassifierNode]) -> bool:
        """Record a round; return True once converged."""
        movement = 0.0
        current: dict[int, Classification] = {}
        current_fp: dict[int, bytes] = {}
        for node in nodes:
            classification = node.classification
            current[node.node_id] = classification
            fingerprint = node.state_fingerprint()
            if fingerprint is not None:
                current_fp[node.node_id] = fingerprint
            previous = self._previous.get(node.node_id)
            if previous is None:
                movement = float("inf")
            elif (
                fingerprint is not None
                and self._previous_fp.get(node.node_id) == fingerprint
            ):
                # Identical bytes: distance is zero, no LP needed.
                continue
            else:
                movement = max(
                    movement,
                    classification_distance(classification, previous, self.scheme),
                )
        self._previous = current
        self._previous_fp = current_fp
        self.last_movement = movement
        if movement <= self.tolerance:
            self._quiet_rounds += 1
        else:
            self._quiet_rounds = 0
        return self._quiet_rounds >= self.patience

    @property
    def converged(self) -> bool:
        return self._quiet_rounds >= self.patience
