"""Quantised weight arithmetic for the generic classification algorithm.

The paper (Section 4.1) quantises all collection weights to multiples of a
system parameter ``q`` in order to rule out executions in which a finite
amount of weight is transferred through infinitely many infinitesimal
messages (a Zeno effect), which would break the convergence proof.

This module represents weights *exactly* as integer counts of quanta.  A
whole input value has weight ``1``, i.e. ``quanta_per_unit`` quanta.  All
split and merge operations are closed over the integers, so system-wide
weight conservation — the invariant every lemma in Section 6 leans on — is
exact rather than approximate, no matter how many messages are exchanged.

The paper's ``half`` function returns "the multiple of q which is closest
to alpha/2".  For an integer quantum count ``w`` the two closest multiples
are ``floor(w/2)`` and ``ceil(w/2)``; when ``w`` is odd they are equally
close and the tie is broken in favour of the *kept* share (``ceil``), so a
collection holding a single quantum keeps it instead of evaporating.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Quantization", "WeightError", "DEFAULT_QUANTA_PER_UNIT"]

#: Default resolution: one input value = 2**40 quanta (q ~ 1e-12, the
#: paper's "q is set by floating point accuracy").  Deep enough that a
#: node can halve its weight every round for dozens of rounds — as
#: happens under heavy crash rates, when most gossip targets are dead —
#: without any collection being forced onto the one-quantum floor, where
#: conformance rule 2 would force-merge it and contaminate its summary.
#: Still exact: weights are Python ints, and a collection aggregating a
#: 16M-node network stays within the wire format's unsigned 64 bits.
DEFAULT_QUANTA_PER_UNIT = 1 << 40


class WeightError(ValueError):
    """Raised when a weight is invalid (non-positive or off-lattice)."""


@dataclass(frozen=True, slots=True)
class Quantization:
    """The weight lattice: all weights are multiples of ``1/quanta_per_unit``.

    Parameters
    ----------
    quanta_per_unit:
        Number of quanta making up the weight of one whole input value.
        Must be a positive integer.  The paper's ``q`` equals
        ``1 / quanta_per_unit``.

    Examples
    --------
    >>> lattice = Quantization(quanta_per_unit=4)
    >>> lattice.quantum
    0.25
    >>> lattice.split(5)
    (3, 2)
    >>> lattice.to_float(3)
    0.75
    """

    quanta_per_unit: int = DEFAULT_QUANTA_PER_UNIT

    def __post_init__(self) -> None:
        if not isinstance(self.quanta_per_unit, int) or self.quanta_per_unit < 1:
            raise WeightError(
                f"quanta_per_unit must be a positive integer, got {self.quanta_per_unit!r}"
            )

    @property
    def quantum(self) -> float:
        """The paper's ``q``: the smallest representable weight."""
        return 1.0 / self.quanta_per_unit

    @property
    def unit(self) -> int:
        """Quanta held by one whole input value (weight 1)."""
        return self.quanta_per_unit

    def to_float(self, quanta: int) -> float:
        """Convert an integer quantum count to its real-valued weight."""
        return quanta / self.quanta_per_unit

    def from_float(self, weight: float) -> int:
        """Snap a real-valued weight onto the lattice (nearest multiple)."""
        if weight < 0:
            raise WeightError(f"weight must be non-negative, got {weight}")
        return round(weight * self.quanta_per_unit)

    def check(self, quanta: int) -> int:
        """Validate a quantum count, returning it unchanged.

        Raises
        ------
        WeightError
            If ``quanta`` is not a positive integer (weight 0 collections
            must never exist: every collection describes at least one
            quantum of some input value).
        """
        if not isinstance(quanta, int):
            raise WeightError(f"weight must be an integer quantum count, got {quanta!r}")
        if quanta <= 0:
            raise WeightError(f"weight must be positive, got {quanta} quanta")
        return quanta

    def split(self, quanta: int) -> tuple[int, int]:
        """Split a weight per the paper's ``half`` function.

        Returns ``(kept, sent)`` with ``kept + sent == quanta`` and both
        being the multiples of ``q`` closest to ``quanta / 2`` (ties give
        the extra quantum to the kept share).  ``sent`` may be 0 when
        ``quanta == 1``; callers must then skip sending that collection.
        """
        self.check(quanta)
        sent = quanta // 2
        kept = quanta - sent
        return kept, sent

    def is_minimum(self, quanta: int) -> bool:
        """True when this weight is exactly one quantum (the paper's ``q``).

        Collections at the minimum weight receive special treatment in
        ``partition``: they must be merged with at least one other
        collection (Section 4.1's conformance rule 2).
        """
        return quanta == 1
