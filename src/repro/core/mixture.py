"""Auxiliary mixture-space vectors (the dashed-frame code of Algorithm 1).

Section 4.2 of the paper describes every collection as a vector in the
*mixture space* R^n (``n`` being the number of input values): coordinate
``j`` holds the amount of weight of input value ``j`` contained in the
collection.  The paper uses these vectors purely as proof machinery
(Lemma 1 shows the summary a node maintains always equals ``f`` applied to
the collection's mixture vector), but they are also the perfect
*measurement* instrument: they record exactly which original inputs, and in
what proportion, ended up inside each collection.  The Figure 3 benchmark
uses them to compute the missed-outlier rate, and the convergence tests use
them to check Lemma 2's monotonically decreasing maximal reference angles.

Tracking the vectors costs O(n) per collection, so it is optional
(``track_aux`` on :class:`~repro.core.node.ClassifierNode`) and switched on
only by tests and instrumentation-heavy experiments.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["MixtureVector"]


class MixtureVector:
    """A point in the mixture space R^n, measured in weight quanta.

    The vector is non-negative, and its L1 norm equals the weight (in
    quanta) of the collection it describes — that is Equation (2) of
    Lemma 1.  Components are stored as floats: splits multiply by rational
    factors, so exact integrality is not preserved per-component, only the
    L1 total is (up to float rounding, which the tests bound).
    """

    __slots__ = ("components",)

    def __init__(self, components: np.ndarray) -> None:
        self.components = np.asarray(components, dtype=float)
        if self.components.ndim != 1:
            raise ValueError("mixture vector must be one-dimensional")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, index: int, n_inputs: int, quanta: int) -> "MixtureVector":
        """The initial vector of node ``index``: ``quanta`` times e_index.

        Algorithm 1 line 2 initialises node ``i`` with the unit vector
        ``e_i``; in quantum units that is ``quanta_per_unit * e_i``.
        """
        if not 0 <= index < n_inputs:
            raise ValueError(f"index {index} out of range for n_inputs={n_inputs}")
        components = np.zeros(n_inputs)
        components[index] = float(quanta)
        return cls(components)

    @classmethod
    def sum_of(cls, vectors: Iterable["MixtureVector"]) -> "MixtureVector":
        """Merge rule (Algorithm 1 line 11): component-wise sum."""
        vectors = list(vectors)
        if not vectors:
            raise ValueError("cannot sum an empty set of mixture vectors")
        total = np.zeros_like(vectors[0].components)
        for vector in vectors:
            total = total + vector.components
        return cls(total)

    # ------------------------------------------------------------------
    # Algorithm operations
    # ------------------------------------------------------------------
    def scaled(self, numerator: int, denominator: int) -> "MixtureVector":
        """Split rule (Algorithm 1 lines 6-7): scale by a rational factor.

        When a collection of weight ``w`` is split into shares ``kept`` and
        ``sent``, the kept vector is ``aux * kept / w`` and the sent vector
        is ``aux * sent / w``; the two scalings sum back to the original,
        preserving system-wide weight per input value.
        """
        if denominator <= 0:
            raise ValueError("denominator must be positive")
        return MixtureVector(self.components * (numerator / denominator))

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    @property
    def l1(self) -> float:
        """L1 norm, in quanta.  Equals the collection weight (Lemma 1)."""
        return float(np.sum(self.components))

    @property
    def l2(self) -> float:
        return float(np.linalg.norm(self.components))

    @property
    def n_inputs(self) -> int:
        return int(self.components.shape[0])

    def normalized(self) -> np.ndarray:
        """Direction of the vector (unit L2 norm), used for destinations."""
        norm = self.l2
        if norm == 0:
            raise ValueError("cannot normalise a zero mixture vector")
        return self.components / norm

    def reference_angle(self, axis: int) -> float:
        """The paper's i'th reference angle: angle between ``self`` and e_i.

        Section 6.1 proves the maximal reference angle over the pool is
        monotonically decreasing (Lemma 2); tests exercise that invariant
        through this accessor.
        """
        norm = self.l2
        if norm == 0:
            raise ValueError("zero vector has no reference angles")
        cosine = self.components[axis] / norm
        return math.acos(min(1.0, max(-1.0, cosine)))

    def reference_angles(self) -> np.ndarray:
        """All n reference angles at once (vectorised)."""
        norm = self.l2
        if norm == 0:
            raise ValueError("zero vector has no reference angles")
        cosines = np.clip(self.components / norm, -1.0, 1.0)
        return np.arccos(cosines)

    def share_of(self, indices: np.ndarray | list[int]) -> float:
        """Fraction of this collection's weight originating from ``indices``.

        This is the provenance query behind the missed-outlier measurement:
        with ``indices`` the outlier-generated inputs, it returns how much
        of the collection is (mis)attributed outlier mass.
        """
        total = self.l1
        if total == 0:
            return 0.0
        return float(np.sum(self.components[list(indices)])) / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MixtureVector(l1={self.l1:.3f}, n={self.n_inputs})"
