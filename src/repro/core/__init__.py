"""Core of the paper's contribution: the generic classification algorithm.

This package contains everything in Sections 3, 4 and 6 of the paper that
is scheme-independent: quantised weights, collections and classifications,
the auxiliary mixture-space vectors, the instantiation contract (with
requirements R1-R4), the generic node itself, and the convergence
measurement machinery.
"""

from repro.core.audit import AuditFailure, AuditReport, SchemeAuditor, pooled_values_f
from repro.core.classification import Classification
from repro.core.collection import Collection
from repro.core.convergence import (
    ConvergenceDetector,
    classification_distance,
    disagreement,
    match_collections,
    max_reference_angles,
    pool_collections,
)
from repro.core.mixture import MixtureVector
from repro.core.node import ClassifierNode, NodeStats
from repro.core.scheme import PartitionError, SummaryScheme, validate_partition
from repro.core.serialization import (
    CentroidCodec,
    DiagonalGaussianCodec,
    GaussianCodec,
    HistogramCodec,
    SummaryCodec,
    codec_for_scheme,
    decode_payload,
    encode_payload,
    payload_size_bytes,
)
from repro.core.weights import DEFAULT_QUANTA_PER_UNIT, Quantization, WeightError

__all__ = [
    "AuditFailure",
    "AuditReport",
    "CentroidCodec",
    "Classification",
    "Collection",
    "ClassifierNode",
    "DiagonalGaussianCodec",
    "GaussianCodec",
    "HistogramCodec",
    "ConvergenceDetector",
    "DEFAULT_QUANTA_PER_UNIT",
    "MixtureVector",
    "NodeStats",
    "PartitionError",
    "Quantization",
    "SchemeAuditor",
    "SummaryCodec",
    "SummaryScheme",
    "WeightError",
    "classification_distance",
    "codec_for_scheme",
    "decode_payload",
    "disagreement",
    "match_collections",
    "max_reference_angles",
    "encode_payload",
    "payload_size_bytes",
    "pool_collections",
    "pooled_values_f",
    "validate_partition",
]
