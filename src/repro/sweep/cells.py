"""Built-in sweep cell runners and runner resolution.

A *cell runner* is a module-level function ``fn(params: dict) -> dict``:
it receives one task's parameter dict (with ``seed`` injected) and
returns a JSON-able result.  Runners are referenced by dotted
``"module:function"`` paths — or by the short names in :data:`RUNNERS` —
so worker processes resolve them by import, never by pickling.

Determinism contract: a runner must derive **all** randomness from
``params["seed"]`` (and the deterministic simulation kernel it drives)
and must return plain Python scalars and lists, so the canonical JSON of
its result is byte-identical wherever the cell runs.

The built-ins cover the paper's evaluation grid:

- :func:`classification_cell` — Algorithm 1 (any scheme) on any topology
  under either scheduler, with optional Bernoulli crash injection; the
  generic cell behind the figure-4 / robustness / ablation style sweeps.
- :func:`push_sum_cell` — the regular-aggregation baseline on the same
  grid, for robust-vs-regular comparisons.
- :func:`debug_cell` — a controllable cell (sleep, fail, echo) used by
  the test-suite and the orchestration-overhead benchmark.
"""

from __future__ import annotations

import importlib
import time
from typing import Any, Callable, Mapping

import numpy as np

from repro.analysis.accuracy import average_error
from repro.analysis.outliers import robust_mean
from repro.core.convergence import disagreement
from repro.core.weights import Quantization
from repro.data.generators import fence_fire_values, outlier_scenario
from repro.network import topology
from repro.network.failures import BernoulliCrashes, NoFailures
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

__all__ = [
    "RUNNERS",
    "resolve_runner",
    "classification_cell",
    "push_sum_cell",
    "debug_cell",
]

#: Short names accepted anywhere a runner reference is.
RUNNERS: dict[str, str] = {
    "classification": "repro.sweep.cells:classification_cell",
    "push_sum": "repro.sweep.cells:push_sum_cell",
    "debug": "repro.sweep.cells:debug_cell",
}

CellRunner = Callable[[Mapping[str, Any]], dict[str, Any]]


def resolve_runner(reference: str) -> CellRunner:
    """Import the runner behind a short name or ``module:function`` path."""
    path = RUNNERS.get(reference, reference)
    module_name, sep, function_name = path.partition(":")
    if not sep or not module_name or not function_name:
        raise ValueError(
            f"runner reference {reference!r} is neither a registered name "
            f"({sorted(RUNNERS)}) nor a 'module:function' path"
        )
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, function_name)
    except AttributeError:
        raise ValueError(f"module {module_name!r} has no attribute {function_name!r}") from None
    if not callable(fn):
        raise ValueError(f"runner {path!r} is not callable")
    return fn


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
def _build_graph(name: str, n: int, seed: int):
    """A named topology at (or near) ``n`` nodes."""
    if name == "complete":
        return topology.complete(n)
    if name == "ring":
        return topology.ring(n)
    if name == "line":
        return topology.line(n)
    if name == "star":
        return topology.star(n)
    if name == "grid":
        side = max(1, int(np.sqrt(n)))
        return topology.grid(side, (n + side - 1) // side)
    if name == "geometric":
        return topology.random_geometric(n, seed=seed)
    if name == "small_world":
        return topology.watts_strogatz(n, k=4, rewire=0.2, seed=seed)
    if name == "erdos_renyi":
        return topology.erdos_renyi(n, seed=seed)
    raise ValueError(f"unknown topology {name!r}")


def _build_scheme(name: str, seed: int, params: Mapping[str, Any]):
    if name in ("gm", "gaussian_mixture"):
        return GaussianMixtureScheme(seed=seed)
    if name == "centroid":
        return CentroidScheme()
    if name in ("diagonal", "diagonal_gaussian"):
        return DiagonalGaussianScheme(seed=seed)
    if name == "histogram":
        return HistogramScheme(
            low=float(params.get("histogram_low", -5.0)),
            high=float(params.get("histogram_high", 25.0)),
            bins=int(params.get("histogram_bins", 48)),
        )
    raise ValueError(f"unknown scheme {name!r}")


def _build_dataset(params: Mapping[str, Any], seed: int):
    """(values, true_mean_or_None) for the named dataset."""
    dataset = params.get("dataset", "outlier")
    n = int(params["n"])
    if dataset == "outlier":
        fraction = float(params.get("outlier_fraction", 0.05))
        delta = float(params.get("delta", 10.0))
        n_outliers = max(1, round(n * fraction))
        scenario = outlier_scenario(
            delta, n_good=n - n_outliers, n_outliers=n_outliers, seed=seed
        )
        return scenario.values, scenario.true_mean
    if dataset == "two_cluster":
        separation = float(params.get("separation", 8.0))
        rng = np.random.default_rng(seed)
        half = n // 2
        values = np.vstack(
            [
                rng.normal([0.0, 0.0], 0.6, size=(half, 2)),
                rng.normal([separation, separation], 0.6, size=(n - half, 2)),
            ]
        )
        return values, None
    if dataset == "fence_fire":
        values, _ = fence_fire_values(n, seed=seed)
        return values, None
    raise ValueError(f"unknown dataset {dataset!r}")


def _failure_model(params: Mapping[str, Any]):
    rate = float(params.get("crash_rate", 0.0))
    if rate <= 0.0:
        return NoFailures()
    return BernoulliCrashes(rate, min_survivors=int(params.get("min_survivors", 2)))


# ----------------------------------------------------------------------
# Built-in cells
# ----------------------------------------------------------------------
def classification_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Run Algorithm 1 on one grid cell; return its scalar measurements.

    Recognised parameters (with defaults): ``n`` (required), ``seed``
    (injected), ``scheme`` ("gm"), ``topology`` ("complete"), ``engine``
    ("rounds"), ``variant`` ("push"), ``k`` (2), ``rounds`` (15),
    ``dataset`` ("outlier"; also "two_cluster", "fence_fire"),
    ``delta`` / ``outlier_fraction`` / ``separation`` (dataset shape),
    ``crash_rate`` / ``min_survivors`` (failure injection),
    ``quanta_per_unit`` (weight lattice), ``early_exit`` (stop once the
    kernel detects structural quiescence — see ``docs/performance.md``)
    with ``quiescence_patience`` (3).
    """
    seed = int(params["seed"])
    values, true_mean = _build_dataset(params, seed)
    n = len(values)
    graph = _build_graph(str(params.get("topology", "complete")), n, seed)
    if graph.number_of_nodes() != n:
        values = values[: graph.number_of_nodes()]
        n = len(values)
    scheme = _build_scheme(str(params.get("scheme", "gm")), seed, params)
    quanta = params.get("quanta_per_unit")
    early_exit = bool(params.get("early_exit", False))
    engine, nodes = build_classification_network(
        values,
        scheme,
        k=int(params.get("k", 2)),
        graph=graph,
        seed=seed,
        quantization=Quantization(int(quanta)) if quanta is not None else None,
        variant=str(params.get("variant", "push")),
        failure_model=_failure_model(params),
        engine=str(params.get("engine", "rounds")),
        stop_on_quiescence=early_exit,
        quiescence_patience=int(params.get("quiescence_patience", 3)),
    )
    rounds = int(params.get("rounds", 15))
    rounds_run = engine.run(rounds)

    live = [nodes[node_id] for node_id in engine.live_nodes]
    result: dict[str, Any] = {
        "n": int(n),
        "rounds_run": int(rounds_run),
        "messages_sent": int(engine.metrics.messages_sent),
        "messages_delivered": int(engine.metrics.messages_delivered),
        "messages_dropped": int(engine.metrics.messages_dropped),
        "survivors": int(len(live)),
        "disagreement": float(disagreement([nodes[i] for i in engine.live_nodes], scheme)),
    }
    if early_exit:
        result["quiescent"] = bool(engine.quiescent)
        result["rounds_saved"] = int(rounds - rounds_run)
    if true_mean is not None and live:
        result["robust_error"] = float(
            average_error((robust_mean(node.classification) for node in live), true_mean)
        )
    return result


def push_sum_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Regular push-sum aggregation on the same grid axes."""
    seed = int(params["seed"])
    values, true_mean = _build_dataset(params, seed)
    n = len(values)
    graph = _build_graph(str(params.get("topology", "complete")), n, seed)
    if graph.number_of_nodes() != n:
        values = values[: graph.number_of_nodes()]
        n = len(values)
    engine, nodes = build_push_sum_network(
        values,
        graph,
        seed=seed,
        variant=str(params.get("variant", "push")),
        failure_model=_failure_model(params),
        engine=str(params.get("engine", "rounds")),
    )
    rounds_run = engine.run(int(params.get("rounds", 15)))
    live = list(engine.live_nodes)
    result: dict[str, Any] = {
        "n": int(n),
        "rounds_run": int(rounds_run),
        "messages_sent": int(engine.metrics.messages_sent),
        "survivors": int(len(live)),
    }
    if true_mean is not None and live:
        result["regular_error"] = float(
            average_error((nodes[i].estimate for i in live), true_mean)
        )
    return result


def debug_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """A controllable cell for tests and orchestration benchmarks.

    ``sleep_s`` blocks for that long (simulating a slow cell; the
    orchestration benchmark uses this to measure pool scaling
    independently of core count), ``fail`` raises, and the result echoes
    ``value`` and the injected seed.
    """
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    if params.get("fail"):
        raise RuntimeError(f"injected cell failure (value={params.get('value')!r})")
    return {"value": params.get("value"), "seed": int(params["seed"])}
