"""Named, built-in sweep specifications.

These are the grids the CI job, the throughput benchmark and the docs
refer to by name; ``python -m repro.sweep run mini`` resolves here
before trying the argument as a file path.

- ``mini`` — a 16-cell cross of engine x topology x variant x n on the
  outlier workload: every scheduler and both gossip directions at two
  network sizes, small enough to finish in well under a minute serially.
- ``robustness`` — the paper's crash/outage axes as one grid: crash rate
  x engine at fixed separation, with seed replicates.
- ``paper-grid`` — a reduced-resolution version of the full evaluation
  surface (scheme x engine x n), the shape a "run the whole paper"
  sweep takes at scale.
"""

from __future__ import annotations

from typing import Callable

from repro.sweep.spec import SweepSpec

__all__ = ["BUILTIN_SPECS", "builtin_spec", "mini_spec", "robustness_spec", "paper_grid_spec"]


def mini_spec() -> SweepSpec:
    """The 16-cell smoke grid (CI, benchmarks, examples)."""
    return SweepSpec(
        name="mini",
        runner="classification",
        base_seed=7,
        axes={
            "engine": ["rounds", "async"],
            "topology": ["complete", "ring"],
            "variant": ["push", "pushpull"],
            "n": [24, 36],
        },
        fixed={
            "dataset": "outlier",
            "delta": 10.0,
            "outlier_fraction": 0.1,
            "k": 2,
            "rounds": 8,
        },
        timeout_s=300.0,
        max_retries=2,
    )


def robustness_spec() -> SweepSpec:
    """Crash-rate x engine with replicates: the Figure 4 axis as a grid."""
    return SweepSpec(
        name="robustness",
        runner="classification",
        base_seed=32,
        axes={
            "engine": ["rounds", "async"],
            "crash_rate": [0.0, 0.02, 0.05, 0.10],
        },
        fixed={
            "dataset": "outlier",
            "delta": 10.0,
            "n": 64,
            "k": 2,
            "rounds": 20,
            "min_survivors": 4,
        },
        replicates=3,
        timeout_s=600.0,
        max_retries=2,
    )


def paper_grid_spec() -> SweepSpec:
    """A reduced-resolution cut of the full evaluation surface."""
    return SweepSpec(
        name="paper-grid",
        runner="classification",
        base_seed=2010,
        axes={
            "scheme": ["gm", "centroid"],
            "engine": ["rounds", "async"],
            "n": [100, 200, 400],
        },
        fixed={
            "dataset": "outlier",
            "delta": 10.0,
            "k": 2,
            "rounds": 30,
        },
        replicates=2,
        timeout_s=1800.0,
        max_retries=2,
    )


BUILTIN_SPECS: dict[str, Callable[[], SweepSpec]] = {
    "mini": mini_spec,
    "robustness": robustness_spec,
    "paper-grid": paper_grid_spec,
}


def builtin_spec(name: str) -> SweepSpec:
    """Look a built-in spec up by name."""
    try:
        return BUILTIN_SPECS[name]()
    except KeyError:
        raise ValueError(
            f"unknown built-in spec {name!r}; choose from {sorted(BUILTIN_SPECS)}"
        ) from None
