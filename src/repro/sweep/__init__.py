"""``repro.sweep`` — parallel experiment orchestration.

The evaluation layer above the simulation kernel: a declarative
:class:`~repro.sweep.spec.SweepSpec` expands a parameter grid (scheme,
topology, n, k, engine, failure model, seeds) into independent tasks
with deterministic per-task seeds; :func:`~repro.sweep.runner.run_sweep`
executes them — inline, or fanned out over a fault-tolerant
``multiprocessing`` worker pool — and a SQLite-backed
:class:`~repro.sweep.store.ResultStore` makes interrupted sweeps
resumable cell by cell.  ``python -m repro.sweep`` is the command-line
front door (``run`` / ``status`` / ``export``).
"""

from repro.sweep.cells import RUNNERS, classification_cell, debug_cell, push_sum_cell, resolve_runner
from repro.sweep.runner import SweepReport, run_sweep
from repro.sweep.spec import SweepSpec, Task, canonical_json, derive_seed
from repro.sweep.specs import BUILTIN_SPECS, builtin_spec
from repro.sweep.store import ResultStore

__all__ = [
    "BUILTIN_SPECS",
    "RUNNERS",
    "ResultStore",
    "SweepReport",
    "SweepSpec",
    "Task",
    "builtin_spec",
    "canonical_json",
    "classification_cell",
    "debug_cell",
    "derive_seed",
    "push_sum_cell",
    "resolve_runner",
    "run_sweep",
]
