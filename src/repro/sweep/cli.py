"""The sweep CLI: ``python -m repro.sweep {run,status,export}``.

Usage::

    python -m repro.sweep run mini --workers 4 --store sweep.sqlite
    python -m repro.sweep run grid.json --workers 4 --store sweep.sqlite --resume
    python -m repro.sweep status --store sweep.sqlite
    python -m repro.sweep status --store sweep.sqlite --check-complete
    python -m repro.sweep export --store sweep.sqlite --format csv -o cells.csv

``run`` accepts a built-in spec name (see :mod:`repro.sweep.specs`) or a
path to a JSON spec file.  ``--trace PATH`` wires the run into the
:mod:`repro.obs` event pipeline (per-task spans land in the JSONL trace;
summarise with ``python -m repro.obs.report``).  ``--telemetry STRIDE``
records each cell's per-round convergence curve into the store's
``timeseries`` table (query with :meth:`ResultStore.timeseries`).
``export`` emits JSON or CSV records — one flat row per cell — for the
analysis layer.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
from typing import Any, Optional

from repro.analysis.reporting import banner, format_table
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.specs import BUILTIN_SPECS, builtin_spec
from repro.sweep.store import ResultStore

__all__ = ["main"]


def _load_spec(reference: str) -> SweepSpec:
    """A built-in name, or a JSON spec file path."""
    if reference in BUILTIN_SPECS:
        return builtin_spec(reference)
    if os.path.exists(reference):
        return SweepSpec.from_file(reference)
    raise SystemExit(
        f"error: {reference!r} is neither a built-in spec ({sorted(BUILTIN_SPECS)}) "
        "nor a spec file that exists"
    )


def _latest_run_id(store: ResultStore, run_id: Optional[str]) -> str:
    if run_id is not None:
        return run_id
    run_ids = store.run_ids()
    if not run_ids:
        raise SystemExit(f"error: no runs recorded in {store.path}")
    return run_ids[-1]


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if args.timeout is not None:
        spec = SweepSpec.from_json_dict({**spec.to_json_dict(), "timeout_s": args.timeout})

    def execute() -> Any:
        return run_sweep(
            spec,
            workers=args.workers,
            store=args.store,
            resume=args.resume,
            run_id=args.run_id,
            limit=args.limit,
            progress=not args.no_progress,
            telemetry_stride=args.telemetry,
        )

    if args.trace:
        from repro.obs import JsonlSink, tracing

        with tracing(JsonlSink(args.trace)):
            report = execute()
    else:
        report = execute()

    print(banner(f"sweep {report.name} — run {report.run_id}"))
    rows = [
        ["cells", report.total],
        ["completed", report.completed],
        ["skipped (resume)", report.skipped],
        ["failed", report.failed],
        ["retries", report.retries],
        ["workers", args.workers],
        ["duration_s", report.duration_s],
        ["cells/minute", report.cells_per_minute],
        ["interrupted", report.interrupted],
    ]
    print(format_table(["metric", "value"], rows))
    if report.failures:
        print()
        print("failed cells:")
        for key, error in report.failures.items():
            last_line = error.strip().splitlines()[-1] if error.strip() else "unknown error"
            print(f"  {key}: {last_line}")
    return 0 if not report.failures else 1


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------
def _cmd_status(args: argparse.Namespace) -> int:
    with ResultStore(args.store) as store:
        run_ids = store.run_ids()
        if not run_ids:
            print(f"no runs recorded in {args.store}")
            return 1 if args.check_complete else 0
        targets = [args.run_id] if args.run_id else run_ids
        incomplete = False
        for run_id in targets:
            info = store.run_info(run_id)
            counts = store.status_counts(run_id)
            total = sum(counts.values())
            print(banner(f"run {run_id} — {info['name']} ({info['status']})"))
            print(
                format_table(
                    ["total", "pending", "running", "done", "failed", "workers"],
                    [[
                        total,
                        counts.get("pending", 0),
                        counts.get("running", 0),
                        counts.get("done", 0),
                        counts.get("failed", 0),
                        info["workers"],
                    ]],
                )
            )
            if counts.get("done", 0) != total:
                incomplete = True
            if args.tasks:
                rows = [
                    [task.key, task.status, task.attempts,
                     task.duration_s if task.duration_s is not None else "-"]
                    for task in store.task_rows(run_id)
                ]
                print(format_table(["key", "status", "attempts", "duration_s"], rows))
            print()
    if args.check_complete and incomplete:
        print("check-complete: FAILED — not every cell is done", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _flatten(record: dict[str, Any]) -> dict[str, Any]:
    """One CSV row: params and result dicts become dotted columns."""
    flat: dict[str, Any] = {
        name: record[name] for name in ("key", "status", "seed", "attempts", "duration_s", "error")
    }
    for prefix in ("params", "result"):
        nested = record.get(prefix) or {}
        for name, value in nested.items():
            flat[f"{prefix}.{name}"] = (
                json.dumps(value) if isinstance(value, (list, dict)) else value
            )
    return flat


def _cmd_export(args: argparse.Namespace) -> int:
    with ResultStore(args.store) as store:
        run_id = _latest_run_id(store, args.run_id)
        records = store.export_rows(run_id)
        info = store.run_info(run_id)
    if args.format == "json":
        text = json.dumps(
            {"run_id": run_id, "name": info["name"], "cells": records}, indent=2, sort_keys=True
        )
    else:
        flat = [_flatten(record) for record in records]
        columns: list[str] = []
        for row in flat:
            for name in row:
                if name not in columns:
                    columns.append(name)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        writer.writerows(flat)
        text = buffer.getvalue().rstrip("\n")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.sweep",
        description="Parallel experiment orchestration: run, inspect and export sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a sweep spec")
    run_p.add_argument("spec", help="built-in spec name or JSON spec file path")
    run_p.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = serial in-process, the default)")
    run_p.add_argument("--store", default=None,
                       help="SQLite store path (omitted: in-memory, nothing persisted)")
    run_p.add_argument("--resume", action="store_true",
                       help="skip cells already completed under this run id")
    run_p.add_argument("--run-id", default=None,
                       help="run identifier (default: the spec's content hash)")
    run_p.add_argument("--limit", type=int, default=None,
                       help="stop after this many completions this invocation")
    run_p.add_argument("--timeout", type=float, default=None,
                       help="override the spec's per-task timeout (seconds)")
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a JSONL obs trace of the sweep (see repro.obs.report)")
    run_p.add_argument("--telemetry", metavar="STRIDE", type=int, default=None,
                       help="record per-round convergence telemetry every STRIDE-th "
                            "round into the store's timeseries table")
    run_p.add_argument("--no-progress", action="store_true",
                       help="disable the live progress line")
    run_p.set_defaults(fn=_cmd_run)

    status_p = sub.add_parser("status", help="show run/task state in a store")
    status_p.add_argument("--store", required=True)
    status_p.add_argument("--run-id", default=None, help="one run (default: all runs)")
    status_p.add_argument("--tasks", action="store_true", help="also list per-task rows")
    status_p.add_argument("--check-complete", action="store_true",
                          help="exit 1 unless every cell of every listed run is done")
    status_p.set_defaults(fn=_cmd_status)

    export_p = sub.add_parser("export", help="export one run's cells as JSON or CSV")
    export_p.add_argument("--store", required=True)
    export_p.add_argument("--run-id", default=None, help="default: the most recent run")
    export_p.add_argument("--format", choices=["json", "csv"], default="json")
    export_p.add_argument("--output", "-o", default=None, help="default: stdout")
    export_p.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a consumer that stopped reading (head, grep -q).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
