"""``python -m repro.sweep`` — the sweep orchestration CLI."""

import sys

from repro.sweep.cli import main

sys.exit(main())
