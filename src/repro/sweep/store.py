"""The persistent sweep result store (SQLite).

One file holds any number of *runs*; a run is one spec expansion, its
per-task execution state, and the cell results.  The store is the
substrate of ``--resume``: task status survives interruption, so a
restarted sweep registers the same task set (``INSERT OR IGNORE``),
reads back the ``done`` keys and only executes the remainder.

Concurrency model: **single writer**.  Only the orchestrating parent
process touches the database — workers report results over a queue —
so no WAL tuning, busy-retry loops or cross-process locking is needed,
and the store works unchanged on any filesystem SQLite does.

Schema (three tables):

- ``runs`` — one row per run: id, the full spec as canonical JSON,
  creation time, worker count, terminal status
  (``running`` / ``interrupted`` / ``complete``);
- ``tasks`` — one row per cell: canonical key, parameter JSON, derived
  seed, execution status (``pending`` / ``running`` / ``done`` /
  ``failed``), attempt count, duration, and the last error text;
- ``results`` — one row per completed cell: the canonical result JSON
  exactly as the worker produced it (byte-identity is preserved
  end-to-end) plus a completion timestamp;
- ``timeseries`` — long-format telemetry points for cells run with
  telemetry enabled: one row per (cell, engine, round, gauge), which is
  what lets a sweep persist every cell's convergence curve next to its
  scalar result (see :mod:`repro.obs.timeseries`).
"""

from __future__ import annotations

import json
import math
import sqlite3
import time
from typing import Any, Iterable, Mapping, Optional

from repro.sweep.spec import SweepSpec, Task, canonical_json

__all__ = ["ResultStore", "TaskRow"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,
    name       TEXT NOT NULL,
    spec_json  TEXT NOT NULL,
    created_at REAL NOT NULL,
    workers    INTEGER NOT NULL DEFAULT 0,
    status     TEXT NOT NULL DEFAULT 'running'
);
CREATE TABLE IF NOT EXISTS tasks (
    run_id      TEXT NOT NULL,
    key         TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    runner      TEXT NOT NULL,
    params_json TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    attempts    INTEGER NOT NULL DEFAULT 0,
    duration_s  REAL,
    error       TEXT,
    PRIMARY KEY (run_id, key)
);
CREATE TABLE IF NOT EXISTS results (
    run_id       TEXT NOT NULL,
    key          TEXT NOT NULL,
    result_json  TEXT NOT NULL,
    completed_at REAL NOT NULL,
    PRIMARY KEY (run_id, key)
);
CREATE TABLE IF NOT EXISTS timeseries (
    run_id TEXT NOT NULL,
    key    TEXT NOT NULL,
    engine INTEGER NOT NULL DEFAULT 0,
    round  INTEGER NOT NULL,
    t      REAL,
    name   TEXT NOT NULL,
    value  REAL,
    PRIMARY KEY (run_id, key, engine, round, name)
);
"""


class TaskRow:
    """One task's persisted state (a thin named view over a row)."""

    __slots__ = ("key", "idx", "runner", "params", "seed", "status", "attempts", "duration_s", "error")

    def __init__(self, row: sqlite3.Row) -> None:
        self.key: str = row["key"]
        self.idx: int = row["idx"]
        self.runner: str = row["runner"]
        self.params: dict[str, Any] = json.loads(row["params_json"])
        self.seed: int = row["seed"]
        self.status: str = row["status"]
        self.attempts: int = row["attempts"]
        self.duration_s: Optional[float] = row["duration_s"]
        self.error: Optional[str] = row["error"]


class ResultStore:
    """Open (creating if needed) the sweep database at ``path``.

    ``":memory:"`` gives an ephemeral store with identical semantics —
    the serial runner uses one when no persistence was requested, so
    every execution path exercises the same bookkeeping.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def has_run(self, run_id: str) -> bool:
        row = self._conn.execute("SELECT 1 FROM runs WHERE run_id = ?", (run_id,)).fetchone()
        return row is not None

    def run_ids(self) -> list[str]:
        """All run ids, oldest first."""
        rows = self._conn.execute("SELECT run_id FROM runs ORDER BY created_at").fetchall()
        return [row["run_id"] for row in rows]

    def run_info(self, run_id: str) -> dict[str, Any]:
        row = self._conn.execute("SELECT * FROM runs WHERE run_id = ?", (run_id,)).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        return dict(row)

    def spec_for(self, run_id: str) -> SweepSpec:
        """Rehydrate the spec a run was created from."""
        return SweepSpec.from_json_dict(json.loads(self.run_info(run_id)["spec_json"]))

    def begin_run(
        self, run_id: str, spec: SweepSpec, tasks: Iterable[Task], workers: int, resume: bool
    ) -> None:
        """Register a run and its task set; idempotent under ``resume``.

        A fresh run with an id already present is an error — it would
        silently mix two sweeps' results; pass ``resume=True`` (skip
        completed cells) or choose a new run id.
        """
        exists = self.has_run(run_id)
        if exists and not resume:
            raise ValueError(
                f"run {run_id!r} already exists in {self.path}; "
                "resume it or pick a different --run-id"
            )
        with self._conn:
            if not exists:
                self._conn.execute(
                    "INSERT INTO runs (run_id, name, spec_json, created_at, workers, status) "
                    "VALUES (?, ?, ?, ?, ?, 'running')",
                    (run_id, spec.name, canonical_json(spec.to_json_dict()), time.time(), workers),
                )
            else:
                self._conn.execute(
                    "UPDATE runs SET status = 'running', workers = ? WHERE run_id = ?",
                    (workers, run_id),
                )
            self._conn.executemany(
                "INSERT OR IGNORE INTO tasks (run_id, key, idx, runner, params_json, seed) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (run_id, task.key, task.index, task.runner, canonical_json(dict(task.params)), task.seed)
                    for task in tasks
                ],
            )
            # A task interrupted mid-flight last time is pending again.
            self._conn.execute(
                "UPDATE tasks SET status = 'pending' WHERE run_id = ? AND status = 'running'",
                (run_id,),
            )

    def finish_run(self, run_id: str, status: str) -> None:
        with self._conn:
            self._conn.execute("UPDATE runs SET status = ? WHERE run_id = ?", (status, run_id))

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def task_rows(self, run_id: str) -> list[TaskRow]:
        rows = self._conn.execute(
            "SELECT * FROM tasks WHERE run_id = ? ORDER BY idx", (run_id,)
        ).fetchall()
        return [TaskRow(row) for row in rows]

    def keys_with_status(self, run_id: str, status: str) -> set[str]:
        rows = self._conn.execute(
            "SELECT key FROM tasks WHERE run_id = ? AND status = ?", (run_id, status)
        ).fetchall()
        return {row["key"] for row in rows}

    def status_counts(self, run_id: str) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM tasks WHERE run_id = ? GROUP BY status",
            (run_id,),
        ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def mark_running(self, run_id: str, key: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE tasks SET status = 'running', attempts = attempts + 1 "
                "WHERE run_id = ? AND key = ?",
                (run_id, key),
            )

    def mark_done(self, run_id: str, key: str, result_json: str, duration_s: float) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE tasks SET status = 'done', duration_s = ?, error = NULL "
                "WHERE run_id = ? AND key = ?",
                (duration_s, run_id, key),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO results (run_id, key, result_json, completed_at) "
                "VALUES (?, ?, ?, ?)",
                (run_id, key, result_json, time.time()),
            )

    def mark_failed(self, run_id: str, key: str, error: str, duration_s: Optional[float]) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE tasks SET status = 'failed', duration_s = ?, error = ? "
                "WHERE run_id = ? AND key = ?",
                (duration_s, error, run_id, key),
            )

    def mark_pending(self, run_id: str, key: str, error: Optional[str] = None) -> None:
        """Requeue a task after a worker crash or timeout (attempt kept)."""
        with self._conn:
            self._conn.execute(
                "UPDATE tasks SET status = 'pending', error = ? WHERE run_id = ? AND key = ?",
                (error, run_id, key),
            )

    def attempts(self, run_id: str, key: str) -> int:
        row = self._conn.execute(
            "SELECT attempts FROM tasks WHERE run_id = ? AND key = ?", (run_id, key)
        ).fetchone()
        return 0 if row is None else int(row["attempts"])

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result_json(self, run_id: str, key: str) -> Optional[str]:
        """The stored canonical result text (byte-exact), or ``None``."""
        row = self._conn.execute(
            "SELECT result_json FROM results WHERE run_id = ? AND key = ?", (run_id, key)
        ).fetchone()
        return None if row is None else row["result_json"]

    def results(self, run_id: str) -> dict[str, Any]:
        """All completed results, parsed, keyed by task key, in task order."""
        rows = self._conn.execute(
            "SELECT r.key AS key, r.result_json AS result_json FROM results r "
            "JOIN tasks t ON t.run_id = r.run_id AND t.key = r.key "
            "WHERE r.run_id = ? ORDER BY t.idx",
            (run_id,),
        ).fetchall()
        return {row["key"]: json.loads(row["result_json"]) for row in rows}

    # ------------------------------------------------------------------
    # Telemetry time series
    # ------------------------------------------------------------------
    def add_timeseries(
        self,
        run_id: str,
        key: str,
        rows: Iterable[Mapping[str, Any]],
        engine: Optional[int] = None,
    ) -> int:
        """Persist telemetry sample rows for one cell; returns points written.

        ``rows`` are the flat sample dicts a
        :class:`~repro.obs.timeseries.TimeSeriesRecorder` (or
        ``TelemetryHub.rows()``) produces; each non-identity column lands
        as one long-format point.  ``engine`` overrides the per-row
        engine ordinal when given.  NaN gauges store as SQL ``NULL``.
        Re-inserting a (cell, engine, round, gauge) point replaces it, so
        resumed cells do not duplicate their curves.
        """
        points: list[tuple[Any, ...]] = []
        for row in rows:
            row_engine = int(engine) if engine is not None else int(row.get("engine", 0))
            round_index = int(row.get("round", 0))
            t = row.get("t")
            t_value = float(t) if t is not None else None
            for name, value in row.items():
                if name in ("round", "t", "engine"):
                    continue
                if value is None:
                    numeric = None
                else:
                    numeric = float(value)
                    if math.isnan(numeric):
                        numeric = None
                points.append(
                    (run_id, key, row_engine, round_index, t_value, name, numeric)
                )
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO timeseries "
                "(run_id, key, engine, round, t, name, value) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                points,
            )
        return len(points)

    def timeseries(
        self,
        run_id: str,
        key: Optional[str] = None,
        name: Optional[str] = None,
    ) -> list[dict[str, Any]]:
        """Long-format telemetry points, optionally filtered by cell/gauge."""
        query = "SELECT key, engine, round, t, name, value FROM timeseries WHERE run_id = ?"
        args: list[Any] = [run_id]
        if key is not None:
            query += " AND key = ?"
            args.append(key)
        if name is not None:
            query += " AND name = ?"
            args.append(name)
        query += " ORDER BY key, engine, round, name"
        return [dict(row) for row in self._conn.execute(query, args).fetchall()]

    def timeseries_series(
        self, run_id: str, key: str, name: str, engine: int = 0
    ) -> list[tuple[int, Optional[float]]]:
        """One cell's gauge as ``(round, value)`` pairs, round order."""
        rows = self._conn.execute(
            "SELECT round, value FROM timeseries "
            "WHERE run_id = ? AND key = ? AND name = ? AND engine = ? ORDER BY round",
            (run_id, key, name, engine),
        ).fetchall()
        return [(int(row["round"]), row["value"]) for row in rows]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_rows(self, run_id: str) -> list[dict[str, Any]]:
        """One flat record per task: identity, state, params and result."""
        results = {
            row["key"]: row["result_json"]
            for row in self._conn.execute(
                "SELECT key, result_json FROM results WHERE run_id = ?", (run_id,)
            ).fetchall()
        }
        records = []
        for task in self.task_rows(run_id):
            record: dict[str, Any] = {
                "key": task.key,
                "status": task.status,
                "seed": task.seed,
                "attempts": task.attempts,
                "duration_s": task.duration_s,
                "error": task.error,
                "params": task.params,
                "result": json.loads(results[task.key]) if task.key in results else None,
            }
            records.append(record)
        return records
