"""Declarative sweep specifications and their expansion into tasks.

A :class:`SweepSpec` names a grid of simulation cells — scheme, topology,
network size, engine, failure model, seeds — without saying anything
about *how* they run.  :meth:`SweepSpec.expand` turns it into a flat
tuple of independent :class:`Task`\\ s, each carrying everything a worker
process needs: a stable key, a runner reference, a JSON-able parameter
dict and a deterministically derived seed.

Two derivation rules make sweeps reproducible by construction:

- **Keys** are canonical functions of the cell parameters (or an explicit
  per-cell ``label``), so the same spec always expands to the same keys
  in the same order — that is what lets ``--resume`` skip completed cells
  by key, and what makes serial and pooled executions comparable
  cell-for-cell.
- **Seeds** are derived as ``sha256(base_seed ':' key)`` unless the cell
  pins an explicit ``seed`` parameter.  SHA-256 is stable across
  processes, platforms and ``PYTHONHASHSEED``, so a task's RNG stream
  never depends on expansion order, worker identity or scheduling — the
  precondition for byte-identical serial/pooled results.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

__all__ = [
    "Task",
    "SweepSpec",
    "canonical_json",
    "derive_seed",
    "format_param",
]

#: Parameter names with special meaning inside explicit cells.
_CELL_LABEL = "label"
_CELL_RUNNER = "runner"


def canonical_json(obj: Any) -> str:
    """One canonical text form per JSON value.

    Sorted keys, no whitespace.  Used for cell results (the byte-identity
    contract between serial and pooled execution), spec hashing (the
    default run id) and everything the store persists.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, key: str) -> int:
    """The task seed for ``key``: a stable 32-bit SHA-256 derivation."""
    digest = hashlib.sha256(f"{base_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**32)


def format_param(value: Any) -> str:
    """Render one parameter value inside a task key.

    ``repr`` for floats (round-trips exactly), lowercase booleans, plain
    ``str`` otherwise — compact, unambiguous and stable across runs.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class Task:
    """One independent sweep cell, ready to ship to a worker.

    Attributes
    ----------
    index:
        Position in the expanded spec (dispatch order).
    key:
        Canonical cell identity; primary key in the result store.
    runner:
        Runner reference — a registered short name (``"classification"``)
        or a dotted ``"module:function"`` path, resolved inside the
        worker by :func:`repro.sweep.cells.resolve_runner`.
    params:
        JSON-able cell parameters.  The runner receives ``params`` with
        ``seed`` injected.
    seed:
        The derived (or pinned) cell seed.
    timeout_s, max_retries:
        Per-task execution policy, copied from the spec.
    """

    index: int
    key: str
    runner: str
    params: Mapping[str, Any]
    seed: int
    timeout_s: Optional[float] = None
    max_retries: int = 1

    def runner_params(self) -> dict[str, Any]:
        """The dict actually handed to the cell function."""
        merged = dict(self.params)
        merged["seed"] = self.seed
        return merged


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid plus execution policy.

    Either ``axes`` (a full cross-product grid over ``fixed`` defaults)
    or ``cells`` (an explicit, possibly irregular list of parameter
    dicts) describes the cells; ``replicates`` appends a ``rep`` axis for
    seed replication.  Explicit cells may carry a ``label`` (used as the
    task key) and a ``runner`` override.
    """

    name: str
    runner: str = "classification"
    base_seed: int = 0
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    cells: Optional[Sequence[Mapping[str, Any]]] = None
    replicates: int = 1
    timeout_s: Optional[float] = None
    max_retries: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep spec needs a non-empty name")
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.cells is not None and self.axes:
            raise ValueError("give either axes (a grid) or cells (explicit), not both")
        if self.cells is None and not self.axes:
            raise ValueError("an empty sweep: neither axes nor cells were given")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _grid_cells(self) -> list[tuple[str, str, dict[str, Any]]]:
        """(key, runner, params) triples for the axes cross-product."""
        axis_names = sorted(self.axes)
        triples = []
        for combo in itertools.product(*(self.axes[name] for name in axis_names)):
            params = dict(self.fixed)
            params.update(zip(axis_names, combo))
            key = "/".join(
                f"{name}={format_param(value)}" for name, value in zip(axis_names, combo)
            )
            triples.append((key, self.runner, params))
        return triples

    def _explicit_cells(self) -> list[tuple[str, str, dict[str, Any]]]:
        """(key, runner, params) triples for an explicit cell list."""
        triples = []
        for cell in self.cells or ():
            params = dict(self.fixed)
            params.update(cell)
            runner = str(params.pop(_CELL_RUNNER, self.runner))
            label = params.pop(_CELL_LABEL, None)
            if label is not None:
                key = str(label)
            else:
                key = "/".join(
                    f"{name}={format_param(params[name])}" for name in sorted(params)
                )
            triples.append((key, runner, params))
        return triples

    def expand(self) -> tuple[Task, ...]:
        """The flat, ordered task list this spec describes."""
        base = self._explicit_cells() if self.cells is not None else self._grid_cells()
        tasks: list[Task] = []
        seen: set[str] = set()
        for key, runner, params in base:
            for rep in range(self.replicates):
                cell_params = dict(params)
                cell_key = key
                if self.replicates > 1:
                    cell_params["rep"] = rep
                    cell_key = f"{key}/rep={rep}"
                if cell_key in seen:
                    raise ValueError(f"duplicate task key {cell_key!r}; add labels or axes")
                seen.add(cell_key)
                pinned = cell_params.get("seed")
                seed = int(pinned) if pinned is not None else derive_seed(self.base_seed, cell_key)
                tasks.append(
                    Task(
                        index=len(tasks),
                        key=cell_key,
                        runner=runner,
                        params=cell_params,
                        seed=seed,
                        timeout_s=self.timeout_s,
                        max_retries=self.max_retries,
                    )
                )
        return tuple(tasks)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "runner": self.runner,
            "base_seed": self.base_seed,
            "replicates": self.replicates,
            "max_retries": self.max_retries,
        }
        if self.timeout_s is not None:
            record["timeout_s"] = self.timeout_s
        if self.cells is not None:
            record["cells"] = [dict(cell) for cell in self.cells]
        else:
            record["axes"] = {name: list(values) for name, values in self.axes.items()}
        if self.fixed:
            record["fixed"] = dict(self.fixed)
        return record

    @classmethod
    def from_json_dict(cls, record: Mapping[str, Any]) -> "SweepSpec":
        known = {
            "name",
            "runner",
            "base_seed",
            "axes",
            "fixed",
            "cells",
            "replicates",
            "timeout_s",
            "max_retries",
        }
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown sweep spec fields: {sorted(unknown)}")
        if "name" not in record:
            raise ValueError("a sweep spec file needs a 'name'")
        return cls(
            name=record["name"],
            runner=record.get("runner", "classification"),
            base_seed=int(record.get("base_seed", 0)),
            axes=dict(record.get("axes", {})),
            fixed=dict(record.get("fixed", {})),
            cells=list(record["cells"]) if "cells" in record else None,
            replicates=int(record.get("replicates", 1)),
            timeout_s=record.get("timeout_s"),
            max_retries=int(record.get("max_retries", 1)),
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        return cls.from_json_dict(record)

    def spec_hash(self) -> str:
        """Stable content hash — the default run id."""
        return hashlib.sha256(canonical_json(self.to_json_dict()).encode()).hexdigest()[:12]
