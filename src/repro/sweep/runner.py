"""Sweep execution: serial in-process, or a fault-tolerant worker pool.

:func:`run_sweep` is the single entry point.  ``workers=0`` executes the
cells inline (the migrated experiment drivers' default — zero process
overhead, exact legacy behaviour); ``workers>=1`` fans cells out over
long-lived ``multiprocessing`` workers with:

- **per-task timeouts** — a cell that exceeds its deadline has its
  worker terminated and replaced;
- **bounded retry on worker crash** — a task whose worker died (crash or
  timeout) is requeued up to ``max_retries`` times before it is recorded
  as ``failed``;
- **graceful degradation** — a failed cell is a row in the store, never
  an aborted sweep; cell *exceptions* are deterministic and therefore
  fail immediately without retry.

Topology of the pool: each worker owns a private task queue (so the
parent always knows exactly which task a dead worker was holding — the
precondition for correct retry) and all workers share one result queue.
Workers send ``started`` / ``done`` / ``error`` messages; results travel
as canonical JSON text produced *inside* the worker, so the bytes that
reach the store are the bytes the cell computed, regardless of where it
ran — the serial path canonicalises identically, which is what makes
serial and pooled sweeps byte-comparable cell by cell.

Observability: every finished task records a ``sweep.task`` span into
the ambient :mod:`repro.obs` registry/sink (when active), sweep-level
counters (``sweep.completed`` / ``failed`` / ``retries`` / ``skipped``)
accumulate in the :class:`~repro.obs.profiling.MetricsRegistry`, and an
optional live progress line tracks completion on stderr.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Optional, Union

from repro.obs import context as obs_context
from repro.obs.events import Event
from repro.obs.profiling import MetricsRegistry, current_registry
from repro.obs.timeseries import TelemetryConfig
from repro.obs.timeseries import telemetry as telemetry_scope
from repro.sweep.cells import resolve_runner
from repro.sweep.spec import SweepSpec, Task, canonical_json
from repro.sweep.store import ResultStore

__all__ = ["SweepReport", "run_sweep"]

#: Environment knobs for deterministic fault injection (used by the CI
#: mini-sweep and the fault-tolerance tests): a worker about to execute a
#: task whose key contains ``REPRO_SWEEP_CRASH_TASK`` hard-exits once,
#: using ``REPRO_SWEEP_CRASH_FLAG`` (a file path) as the "already
#: crashed" marker so the retry succeeds.
CRASH_TASK_ENV = "REPRO_SWEEP_CRASH_TASK"
CRASH_FLAG_ENV = "REPRO_SWEEP_CRASH_FLAG"

#: Exit code of an injected worker crash (visible in worker exitcodes).
_CRASH_EXIT = 17

#: How long the parent waits in one result-queue poll.
_POLL_S = 0.05

#: Grace period between dispatching a task and its ``started`` message
#: before the dispatch deadline applies (covers queue latency).
_DISPATCH_GRACE_S = 30.0


@dataclass
class SweepReport:
    """What one :func:`run_sweep` invocation did."""

    run_id: str
    name: str
    total: int
    completed: int = 0
    failed: int = 0
    skipped: int = 0
    retries: int = 0
    duration_s: float = 0.0
    interrupted: bool = False
    results: dict[str, Any] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)

    @property
    def cells_per_minute(self) -> float:
        if self.duration_s <= 0.0:
            return 0.0
        return 60.0 * self.completed / self.duration_s

    def as_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "name": self.name,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "skipped": self.skipped,
            "retries": self.retries,
            "duration_s": self.duration_s,
            "interrupted": self.interrupted,
            "cells_per_minute": self.cells_per_minute,
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _maybe_inject_crash(key: str) -> None:
    """Deterministic once-only hard crash, driven by environment knobs."""
    needle = os.environ.get(CRASH_TASK_ENV)
    if not needle or needle not in key:
        return
    flag = os.environ.get(CRASH_FLAG_ENV)
    if not flag:
        return
    try:
        # O_EXCL: exactly one worker ever wins the crash, even if several
        # hold matching tasks concurrently.
        handle = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(handle)
    os._exit(_CRASH_EXIT)


def _execute_cell(
    runner_ref: str, params: dict[str, Any], seed: int, telemetry_stride: Optional[int]
) -> tuple[Any, str, Optional[list[dict[str, Any]]]]:
    """Run one cell; returns (result, canonical result JSON, telemetry rows).

    With a stride, the cell executes inside an ambient telemetry scope:
    every engine the cell builds records its convergence curve, and the
    hub's flattened rows come back for the store's ``timeseries`` table.
    ``emit_events`` is off — sweep cells persist curves, they do not
    stream them.
    """
    fn = resolve_runner(runner_ref)
    merged = dict(params)
    merged["seed"] = seed
    if telemetry_stride is None:
        result = fn(merged)
        return result, canonical_json(result), None
    with telemetry_scope(
        TelemetryConfig(stride=telemetry_stride, emit_events=False)
    ) as hub:
        result = fn(merged)
    return result, canonical_json(result), hub.rows()


def _worker_main(worker_id: int, task_queue: Any, result_queue: Any) -> None:
    """Long-lived worker loop: execute tasks until the ``None`` sentinel."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        key, runner_ref, params, seed, attempt, telemetry_stride = item
        result_queue.put(("started", worker_id, key, attempt))
        _maybe_inject_crash(key)
        start = time.perf_counter()
        try:
            _, payload, rows = _execute_cell(runner_ref, params, seed, telemetry_stride)
            rows_json = json.dumps(rows) if rows is not None else None
        except BaseException:
            duration = time.perf_counter() - start
            result_queue.put(
                ("error", worker_id, key, traceback.format_exc(limit=30), duration)
            )
        else:
            duration = time.perf_counter() - start
            result_queue.put(("done", worker_id, key, payload, duration, rows_json))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """One pool slot: the process, its private queue, and what it holds."""

    __slots__ = ("process", "queue", "task", "attempt", "deadline")

    def __init__(self, process: Any, queue: Any) -> None:
        self.process = process
        self.queue = queue
        self.task: Optional[Task] = None
        self.attempt = 0
        self.deadline: Optional[float] = None


class _Progress:
    """A single self-overwriting progress line on stderr (TTY only)."""

    def __init__(self, name: str, total: int, enabled: bool) -> None:
        self.name = name
        self.total = total
        self.enabled = enabled and sys.stderr.isatty()
        self.started = time.perf_counter()

    def update(self, report: SweepReport, running: int) -> None:
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self.started
        sys.stderr.write(
            f"\r[sweep {self.name}] {report.completed}/{self.total} done"
            f" | {report.failed} failed | {running} running"
            f" | {report.retries} retried | {elapsed:6.1f}s"
        )
        sys.stderr.flush()

    def finish(self) -> None:
        if self.enabled:
            sys.stderr.write("\n")
            sys.stderr.flush()


class _Telemetry:
    """Fan task outcomes into the ambient obs registry and event sink."""

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self.registry = registry if registry is not None else current_registry()
        self.sink = obs_context.current_sink()

    def task_span(self, key: str, duration: float, status: str) -> None:
        if self.registry is not None:
            self.registry.record_span("sweep.task", duration)
            self.registry.inc(f"sweep.{status}")
        if self.sink is not None:
            self.sink.emit(
                Event(
                    kind="span",
                    extra={"name": "sweep.task", "key": key, "duration": duration, "status": status},
                )
            )

    def count(self, name: str, value: float = 1) -> None:
        if self.registry is not None:
            self.registry.inc(name, value)


def _open_store(store: Union[ResultStore, str, os.PathLike, None]) -> tuple[ResultStore, bool]:
    """(store, owned): an in-memory store stands in when none was given."""
    if store is None:
        return ResultStore(":memory:"), True
    if isinstance(store, ResultStore):
        return store, False
    return ResultStore(os.fspath(store)), True


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 0,
    store: Union[ResultStore, str, os.PathLike, None] = None,
    resume: bool = False,
    run_id: Optional[str] = None,
    limit: Optional[int] = None,
    progress: bool = False,
    registry: Optional[MetricsRegistry] = None,
    telemetry_stride: Optional[int] = None,
) -> SweepReport:
    """Execute a sweep spec; never raises for individual cell failures.

    Parameters
    ----------
    spec:
        The grid to run.
    workers:
        ``0`` — inline serial execution in this process (timeouts are not
        enforceable without process isolation and are ignored);
        ``>= 1`` — that many worker processes.
    store:
        A :class:`ResultStore`, a path to one, or ``None`` (ephemeral
        in-memory bookkeeping).
    resume:
        Skip cells already ``done`` under this run id (their stored
        results are loaded into the report, so callers see the full
        sweep either way).
    run_id:
        Defaults to the spec's content hash, so "the same sweep" resumes
        naturally without naming anything.
    limit:
        Stop dispatching after this many completions in *this*
        invocation, leaving the rest pending (used to exercise resume,
        and for budgeted partial runs).  The run is marked
        ``interrupted``.
    progress:
        Draw a live progress line on stderr (TTY only).
    registry:
        Metrics destination; defaults to the ambient profiling registry.
    telemetry_stride:
        When set, every cell runs inside a
        :func:`repro.obs.timeseries.telemetry` scope sampling each
        engine's convergence gauges every ``telemetry_stride``-th
        round-equivalent, and the curves are persisted into the store's
        ``timeseries`` table keyed by cell.  ``None`` (default) records
        no telemetry.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    tasks = spec.expand()
    the_run_id = run_id if run_id is not None else spec.spec_hash()
    the_store, owned = _open_store(store)
    telemetry = _Telemetry(registry)
    report = SweepReport(run_id=the_run_id, name=spec.name, total=len(tasks))
    started = time.perf_counter()
    try:
        the_store.begin_run(the_run_id, spec, tasks, workers=workers, resume=resume)
        done_keys = the_store.keys_with_status(the_run_id, "done") if resume else set()
        if done_keys:
            for key, value in the_store.results(the_run_id).items():
                if key in done_keys:
                    report.results[key] = value
            report.skipped = len(done_keys)
            telemetry.count("sweep.skipped", len(done_keys))
        pending = [task for task in tasks if task.key not in done_keys]
        progress_line = _Progress(spec.name, len(tasks), progress)
        if workers == 0:
            _run_serial(
                spec, pending, the_store, the_run_id, report, telemetry, limit,
                progress_line, telemetry_stride,
            )
        else:
            _run_pooled(
                spec, pending, the_store, the_run_id, report, telemetry, limit,
                progress_line, workers, telemetry_stride,
            )
        progress_line.finish()
        remaining = the_store.status_counts(the_run_id).get("pending", 0)
        report.interrupted = remaining > 0
        the_store.finish_run(the_run_id, "interrupted" if report.interrupted else "complete")
    finally:
        report.duration_s = time.perf_counter() - started
        if owned:
            the_store.close()
    return report


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def _run_serial(
    spec: SweepSpec,
    pending: list[Task],
    store: ResultStore,
    run_id: str,
    report: SweepReport,
    telemetry: _Telemetry,
    limit: Optional[int],
    progress_line: _Progress,
    telemetry_stride: Optional[int],
) -> None:
    for task in pending:
        if limit is not None and report.completed >= limit:
            return
        store.mark_running(run_id, task.key)
        start = time.perf_counter()
        try:
            result, payload, rows = _execute_cell(
                task.runner, dict(task.params), task.seed, telemetry_stride
            )
        except Exception:
            duration = time.perf_counter() - start
            error = traceback.format_exc(limit=30)
            store.mark_failed(run_id, task.key, error, duration)
            report.failed += 1
            report.failures[task.key] = error
            telemetry.task_span(task.key, duration, "failed")
        else:
            duration = time.perf_counter() - start
            store.mark_done(run_id, task.key, payload, duration)
            if rows is not None:
                store.add_timeseries(run_id, task.key, rows)
            report.completed += 1
            report.results[task.key] = result
            telemetry.task_span(task.key, duration, "completed")
        progress_line.update(report, running=0)


# ----------------------------------------------------------------------
# Pooled path
# ----------------------------------------------------------------------
def _pool_context() -> Any:
    """Fork where available (cheap respawn); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _run_pooled(
    spec: SweepSpec,
    pending: list[Task],
    store: ResultStore,
    run_id: str,
    report: SweepReport,
    telemetry: _Telemetry,
    limit: Optional[int],
    progress_line: _Progress,
    workers: int,
    telemetry_stride: Optional[int],
) -> None:
    ctx = _pool_context()
    result_queue = ctx.Queue()
    queue: list[Task] = list(pending)
    attempts: dict[str, int] = {}
    handles: dict[int, _WorkerHandle] = {}
    next_worker_id = 0

    def spawn() -> int:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        task_queue = ctx.Queue(maxsize=1)
        process = ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue),
            daemon=True,
            name=f"sweep-worker-{worker_id}",
        )
        process.start()
        handles[worker_id] = _WorkerHandle(process, task_queue)
        return worker_id

    def dispatch(worker_id: int) -> bool:
        """Hand the next queued task to an idle worker."""
        handle = handles[worker_id]
        if handle.task is not None or not queue:
            return False
        if limit is not None and report.completed + in_flight_count() >= limit:
            return False
        task = queue.pop(0)
        handle.task = task
        handle.attempt = attempts.get(task.key, 0) + 1
        attempts[task.key] = handle.attempt
        timeout = task.timeout_s
        handle.deadline = (
            time.monotonic() + timeout + _DISPATCH_GRACE_S if timeout is not None else None
        )
        store.mark_running(run_id, task.key)
        handle.queue.put(
            (task.key, task.runner, dict(task.params), task.seed, handle.attempt,
             telemetry_stride)
        )
        return True

    def in_flight_count() -> int:
        return sum(1 for handle in handles.values() if handle.task is not None)

    def settle_lost_task(handle: _WorkerHandle, reason: str) -> None:
        """A worker died or was killed while holding a task: retry or fail."""
        task = handle.task
        handle.task = None
        handle.deadline = None
        if task is None:
            return
        if attempts[task.key] <= task.max_retries:
            report.retries += 1
            telemetry.count("sweep.retries")
            store.mark_pending(run_id, task.key, error=reason)
            queue.insert(0, task)
        else:
            store.mark_failed(run_id, task.key, reason, None)
            report.failed += 1
            report.failures[task.key] = reason
            telemetry.count("sweep.failed")

    def replace_worker(worker_id: int, reason: str) -> None:
        handle = handles.pop(worker_id)
        settle_lost_task(handle, reason)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stuck in kernel
                handle.process.kill()
                handle.process.join(timeout=2.0)
        handle.queue.close()
        spawn()

    for _ in range(workers):
        spawn()

    try:
        while True:
            for worker_id in sorted(handles):
                dispatch(worker_id)
            if in_flight_count() == 0:
                # Nothing running and nothing dispatchable: done (or
                # limit reached / queue drained).
                if not queue or (limit is not None and report.completed >= limit):
                    break
            try:
                message = result_queue.get(timeout=_POLL_S)
            except Empty:
                message = None
            if message is not None:
                kind, worker_id, key = message[0], message[1], message[2]
                handle = handles.get(worker_id)
                if handle is None or handle.task is None or handle.task.key != key:
                    # A terminated worker's late message; drop it.
                    continue
                if kind == "started":
                    if handle.task.timeout_s is not None:
                        handle.deadline = time.monotonic() + handle.task.timeout_s
                elif kind == "done":
                    payload, duration, rows_json = message[3], message[4], message[5]
                    store.mark_done(run_id, key, payload, duration)
                    if rows_json is not None:
                        store.add_timeseries(run_id, key, json.loads(rows_json))
                    report.completed += 1
                    report.results[key] = json.loads(payload)
                    telemetry.task_span(key, duration, "completed")
                    handle.task = None
                    handle.deadline = None
                    progress_line.update(report, running=in_flight_count())
                elif kind == "error":
                    error, duration = message[3], message[4]
                    store.mark_failed(run_id, key, error, duration)
                    report.failed += 1
                    report.failures[key] = error
                    telemetry.task_span(key, duration, "failed")
                    handle.task = None
                    handle.deadline = None
                    progress_line.update(report, running=in_flight_count())
            now = time.monotonic()
            for worker_id in list(handles):
                handle = handles[worker_id]
                if handle.task is None:
                    continue
                if not handle.process.is_alive():
                    exitcode = handle.process.exitcode
                    replace_worker(
                        worker_id,
                        f"worker crashed (exit code {exitcode}) while running this task",
                    )
                    progress_line.update(report, running=in_flight_count())
                elif handle.deadline is not None and now > handle.deadline:
                    replace_worker(
                        worker_id,
                        f"task exceeded its {handle.task.timeout_s}s timeout and the worker was terminated",
                    )
                    progress_line.update(report, running=in_flight_count())
    finally:
        for handle in handles.values():
            try:
                handle.queue.put_nowait(None)
            except Exception:  # pragma: no cover - full queue on a dead worker
                pass
        deadline = time.monotonic() + 5.0
        for handle in handles.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        result_queue.close()
        result_queue.cancel_join_thread()
