"""CLI for local-cluster deployment runs; see ``docs/deployment.md``.

Examples
--------
Run a three-node TCP cluster on the fence-fire workload, compare with
the in-memory simulation, and keep the evidence::

    python -m repro.deploy run --nodes 3 --transport tcp --workload fig1 \
        --seed 7 --compare-memory --artifact results/deploy_trace.json

Run one standalone node (the docker-compose shape)::

    python -m repro.deploy node --node-id 1 --nodes 3 --workload fig1 \
        --seed 7 --port 9101 --http-port 9201 --seed-peer 10.0.0.5:9100
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.deploy.cluster import NodeSpec, run_cluster, run_node
from repro.deploy.workloads import WORKLOADS
from repro.network.membership import seeds_to_peers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.deploy",
        description="Run the distributed classifier as real node processes.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="launch and judge a local N-node cluster")
    run.add_argument("--nodes", type=int, default=3, help="cluster size (default 3)")
    run.add_argument(
        "--transport",
        choices=("process", "tcp"),
        default="tcp",
        help="frame transport between node processes (default tcp)",
    )
    run.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="fig1",
        help="input recipe; every node regenerates it from (workload, nodes, seed)",
    )
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--timeout", type=float, default=90.0, help="seconds to reach quiescence")
    run.add_argument("--agreement-tol", type=float, default=0.75)
    run.add_argument(
        "--compare-memory",
        action="store_true",
        help="also run the in-memory simulation and require the cluster to match it",
    )
    run.add_argument("--reference-rounds", type=int, default=30)
    run.add_argument("--reference-tol", type=float, default=1.0)
    run.add_argument("--artifact", help="write the full JSON report here")
    run.add_argument("--gossip-interval", type=float, default=0.05)
    run.add_argument("--patience", type=int, default=10)

    node = commands.add_parser("node", help="run one standalone node (container shape)")
    node.add_argument("--node-id", type=int, required=True)
    node.add_argument("--nodes", type=int, required=True, help="total cluster size")
    node.add_argument("--workload", choices=sorted(WORKLOADS), default="fig1")
    node.add_argument("--seed", type=int, default=7)
    node.add_argument("--host", default="0.0.0.0")
    node.add_argument("--port", type=int, default=0, help="gossip port (0 = ephemeral)")
    node.add_argument("--http-port", type=int, default=0)
    node.add_argument(
        "--seed-peer",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="bootstrap address to JOIN (repeatable)",
    )
    node.add_argument("--gossip-interval", type=float, default=0.05)
    node.add_argument("--patience", type=int, default=10)
    node.add_argument(
        "--duration", type=float, default=3600.0, help="safety-net lifetime in seconds"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        report = run_cluster(
            n_nodes=args.nodes,
            transport=args.transport,
            workload=args.workload,
            seed=args.seed,
            timeout=args.timeout,
            agreement_tol=args.agreement_tol,
            compare_memory=args.compare_memory,
            reference_rounds=args.reference_rounds,
            reference_tol=args.reference_tol,
            artifact=args.artifact,
            gossip_interval=args.gossip_interval,
            patience=args.patience,
        )
        summary = {
            "ok": report["ok"],
            "quiescent": report.get("quiescent"),
            "agreement_max_deviation": report.get("agreement_max_deviation"),
        }
        if "reference" in report:
            summary["reference_max_deviation"] = report["reference"].get(
                "max_deviation_vs_cluster"
            )
        print(json.dumps(summary))
        return 0 if report["ok"] else 1
    if args.command == "node":
        spec = NodeSpec(
            node_id=args.node_id,
            n_nodes=args.nodes,
            workload=args.workload,
            seed=args.seed,
            transport="tcp",
            gossip_port=args.port,
            http_port=args.http_port,
            seeds=tuple(seeds_to_peers(args.seed_peer)),
            host=args.host,
            gossip_interval=args.gossip_interval,
            patience=args.patience,
            duration=args.duration,
        )
        run_node(spec)
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
