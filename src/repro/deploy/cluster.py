"""Local cluster orchestration: N real node processes, one verdict.

The runner behind ``python -m repro.deploy run``.  It is deliberately a
*thin operator*, not a coordinator: it spawns one OS process per node
(each a self-sufficient :func:`run_node` — workload regenerated locally,
own transport endpoint, own HTTP observer), then interacts with the
cluster exclusively through the per-node HTTP endpoints, exactly as an
external operator would:

1. wait for every ``/status`` endpoint to come up,
2. poll until every node reports structural quiescence,
3. read every ``/classification`` and check pairwise agreement (the
   distributed classification problem's success criterion, Definition 4),
4. optionally run the same workload through the in-memory simulation and
   check the deployed answer matches it within tolerance,
5. POST ``/shutdown`` everywhere and reap the processes.

Agreement is tolerance-based, not byte-based: different nodes merge the
same collections in different orders, and floating-point merge order
perturbs the low bits even when the classifications are semantically
identical.  (The byte-identity guarantees live one layer down, in the
simulation transport's parity gates.)
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import time
import urllib.error
import urllib.request
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.core.node import ClassifierNode
from repro.core.weights import Quantization
from repro.deploy.workloads import build_workload
from repro.network.membership import MembershipView, PeerInfo
from repro.network.process_transport import ProcessTransport
from repro.network.runtime import NodeRuntime, cluster_means
from repro.network.tcp_transport import AsyncioTCPTransport
from repro.network.transport import FrameTransport
from repro.network.webapi import NodeWebAPI

__all__ = ["NodeSpec", "run_node", "run_cluster", "classification_deviation"]

_LOCALHOST = "127.0.0.1"


@dataclass(frozen=True)
class NodeSpec:
    """Everything one node process needs; plain data, spawn-picklable."""

    node_id: int
    n_nodes: int
    workload: str
    seed: int
    transport: str  # "process" | "tcp"
    gossip_port: int = 0
    http_port: int = 0
    seeds: tuple[tuple[str, int], ...] = field(default_factory=tuple)
    host: str = _LOCALHOST
    gossip_interval: float = 0.05
    heartbeat_interval: float = 0.5
    failure_timeout: float = 5.0
    patience: int = 10
    duration: float = 120.0


def _build_transport(
    spec: NodeSpec, inboxes: Optional[dict[int, Any]]
) -> tuple[FrameTransport, MembershipView, list[tuple[str, int]]]:
    """One node's transport + membership bootstrap, per the selection matrix."""
    if spec.transport == "process":
        if inboxes is None:
            raise ValueError("process transport needs the parent's inbox map")
        transport: FrameTransport = ProcessTransport(spec.node_id, inboxes)
        # Pipes need no address discovery: membership starts complete
        # (PeerInfo ports double as node ids), and JOIN is unnecessary.
        membership = MembershipView(
            self_info=PeerInfo(spec.node_id, "process", spec.node_id),
            failure_timeout=spec.failure_timeout,
        )
        for node_id in range(spec.n_nodes):
            if node_id != spec.node_id:
                membership.add(PeerInfo(node_id, "process", node_id))
        return transport, membership, []
    if spec.transport == "tcp":
        tcp = AsyncioTCPTransport(spec.node_id, host=spec.host, port=spec.gossip_port)
        tcp.start()
        membership = MembershipView(
            self_info=PeerInfo(spec.node_id, spec.host, int(tcp.bound_port or 0)),
            failure_timeout=spec.failure_timeout,
        )
        return tcp, membership, list(spec.seeds)
    raise ValueError(f"unknown deployment transport {spec.transport!r}")


def run_node(spec: NodeSpec, inboxes: Optional[dict[int, Any]] = None) -> None:
    """One node process, start to finish (the spawn entry point).

    Regenerates the workload from ``(workload, n_nodes, seed)``, takes row
    ``node_id`` as its value, and gossips until shut down over HTTP (or
    until the ``duration`` safety net fires — a node must not outlive a
    crashed operator forever).
    """
    workload = build_workload(spec.workload, spec.n_nodes, spec.seed)
    node = ClassifierNode(
        node_id=spec.node_id,
        value=workload.values[spec.node_id],
        scheme=workload.scheme,
        k=workload.k,
        quantization=Quantization(),
    )
    transport, membership, seed_addresses = _build_transport(spec, inboxes)
    runtime = NodeRuntime(
        node,
        workload.codec,
        transport,
        membership,
        seed_addresses=seed_addresses,
        gossip_interval=spec.gossip_interval,
        heartbeat_interval=spec.heartbeat_interval,
        patience=spec.patience,
        rng=np.random.default_rng(spec.seed * 100_003 + spec.node_id),
    )
    web = NodeWebAPI(runtime, host=spec.host, port=spec.http_port)
    web.start()
    try:
        runtime.run(duration=spec.duration)
    finally:
        web.stop()
        transport.close()


# ----------------------------------------------------------------------
# Operator side
# ----------------------------------------------------------------------
def _free_ports(count: int) -> list[int]:
    """Reserve ephemeral ports by bind-and-release.

    There is a classic race between release and reuse; for a local
    single-operator cluster it is negligible, and the TCP gossip ports
    themselves avoid it entirely (nodes bind port 0 and JOIN with the
    port they actually got — only the HTTP ports, which the operator
    must know up front, use this).
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((_LOCALHOST, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _http_json(
    host: str, port: int, path: str, method: str = "GET", timeout: float = 2.0
) -> dict[str, Any]:
    request = urllib.request.Request(f"http://{host}:{port}{path}", method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _try_http_json(host: str, port: int, path: str, **kwargs: Any) -> Optional[dict[str, Any]]:
    try:
        return _http_json(host, port, path, **kwargs)
    except (urllib.error.URLError, ConnectionError, TimeoutError, OSError, json.JSONDecodeError):
        return None


def classification_deviation(
    means_a: list[list[float]], means_b: list[list[float]]
) -> float:
    """Largest coordinate gap between two sorted cluster-mean lists.

    ``inf`` on a shape mismatch (different cluster counts are a
    disagreement, not an error).
    """
    a = np.asarray(means_a, dtype=float)
    b = np.asarray(means_b, dtype=float)
    if a.shape != b.shape:
        return float("inf")
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def _memory_reference(workload_name: str, n: int, seed: int, rounds: int) -> dict[str, Any]:
    """The same workload through the simulation kernel (in-memory transport)."""
    from repro.network import topology
    from repro.protocols.classification import build_classification_network

    workload = build_workload(workload_name, n, seed)
    kernel, nodes = build_classification_network(
        workload.values, workload.scheme, workload.k, topology.complete(n), seed=seed
    )
    executed = kernel.run(rounds)
    return {
        "engine": "rounds",
        "transport": "memory",
        "rounds": executed,
        "means": cluster_means(nodes[0]),
        "relative_weights": sorted(
            nodes[0].classification.relative_weights().tolist()
        ),
    }


def run_cluster(
    n_nodes: int = 3,
    transport: str = "tcp",
    workload: str = "fig1",
    seed: int = 7,
    timeout: float = 90.0,
    agreement_tol: float = 0.75,
    compare_memory: bool = False,
    reference_rounds: int = 30,
    reference_tol: float = 1.0,
    artifact: Optional[str] = None,
    gossip_interval: float = 0.05,
    heartbeat_interval: float = 0.5,
    patience: int = 10,
) -> dict[str, Any]:
    """Run an N-node local cluster to quiescence and judge the result.

    Returns a report dict with ``ok`` plus per-node evidence; writes the
    same report as a JSON artifact when ``artifact`` is given.  Raises
    nothing for a *failed* run (the CLI turns ``ok`` into the exit code);
    raises only for operator errors (bad workload name, bad transport).
    """
    if transport not in ("process", "tcp"):
        raise ValueError(f"deployment transport must be process or tcp, not {transport!r}")
    build_workload(workload, n_nodes, seed)  # fail fast on a bad recipe

    context = multiprocessing.get_context("spawn")
    http_ports = _free_ports(n_nodes)
    gossip_ports = [0] * n_nodes
    inboxes: Optional[dict[int, Any]] = None
    seeds_by_node: list[tuple[tuple[str, int], ...]] = [() for _ in range(n_nodes)]
    if transport == "tcp":
        # Nodes bind port 0 and announce what they got, so only the
        # bootstrap seed (node 0) needs a pre-agreed gossip port.
        gossip_ports = [_free_ports(1)[0]] + [0] * (n_nodes - 1)
        seed_address = (_LOCALHOST, gossip_ports[0])
        seeds_by_node = [()] + [(seed_address,) for _ in range(n_nodes - 1)]
    else:
        inboxes = {node_id: context.Queue() for node_id in range(n_nodes)}

    specs = [
        NodeSpec(
            node_id=node_id,
            n_nodes=n_nodes,
            workload=workload,
            seed=seed,
            transport=transport,
            gossip_port=gossip_ports[node_id],
            http_port=http_ports[node_id],
            seeds=seeds_by_node[node_id],
            gossip_interval=gossip_interval,
            heartbeat_interval=heartbeat_interval,
            patience=patience,
            duration=timeout + 30.0,
        )
        for node_id in range(n_nodes)
    ]
    processes = [
        context.Process(target=run_node, args=(spec, inboxes), daemon=True)
        for spec in specs
    ]
    for process in processes:
        process.start()

    report: dict[str, Any] = {
        "config": {
            "n_nodes": n_nodes,
            "transport": transport,
            "workload": workload,
            "seed": seed,
            "agreement_tol": agreement_tol,
            "patience": patience,
        },
        "ok": False,
    }
    deadline = time.monotonic() + timeout
    try:
        quiescent = _await_quiescence(specs, deadline)
        report["quiescent"] = quiescent
        statuses = [
            _try_http_json(spec.host, spec.http_port, "/status") for spec in specs
        ]
        classifications = [
            _try_http_json(spec.host, spec.http_port, "/classification") for spec in specs
        ]
        metrics = [
            _try_http_json(spec.host, spec.http_port, "/metrics") for spec in specs
        ]
        peers = [_try_http_json(spec.host, spec.http_port, "/peers") for spec in specs]
        report["nodes"] = [
            {
                "status": statuses[i],
                "classification": classifications[i],
                "metrics": metrics[i],
                "peers": peers[i],
            }
            for i in range(n_nodes)
        ]
        reachable = all(c is not None for c in classifications)
        report["reachable"] = reachable

        max_deviation = float("inf")
        if reachable:
            mean_lists = [c["means"] for c in classifications]  # type: ignore[index]
            max_deviation = max(
                (
                    classification_deviation(mean_lists[i], mean_lists[j])
                    for i in range(n_nodes)
                    for j in range(i + 1, n_nodes)
                ),
                default=0.0,
            )
        report["agreement_max_deviation"] = max_deviation
        agree = reachable and max_deviation <= agreement_tol

        reference_ok = True
        if compare_memory and reachable:
            reference = _memory_reference(workload, n_nodes, seed, reference_rounds)
            deviations = [
                classification_deviation(c["means"], reference["means"])  # type: ignore[index]
                for c in classifications
            ]
            reference["max_deviation_vs_cluster"] = max(deviations)
            reference["tolerance"] = reference_tol
            report["reference"] = reference
            reference_ok = max(deviations) <= reference_tol

        report["ok"] = bool(quiescent and agree and reference_ok)
    finally:
        for spec in specs:
            _try_http_json(spec.host, spec.http_port, "/shutdown", method="POST")
        join_deadline = time.monotonic() + 10.0
        for process in processes:
            process.join(timeout=max(join_deadline - time.monotonic(), 0.1))
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)

    if artifact:
        path = Path(artifact)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(_jsonable(report), indent=2) + "\n")
    return report


def _await_quiescence(specs: list[NodeSpec], deadline: float) -> bool:
    """Poll every /status until all nodes report quiescence (or timeout)."""
    while time.monotonic() < deadline:
        statuses = [
            _try_http_json(spec.host, spec.http_port, "/status") for spec in specs
        ]
        if all(status is not None and status.get("quiescent") for status in statuses):
            return True
        time.sleep(0.2)
    return False


def _jsonable(value: Any) -> Any:
    """Round-trip-safe copy (numpy scalars to floats, inf to string)."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.floating, float)):
        as_float = float(value)
        return as_float if np.isfinite(as_float) else repr(as_float)
    if isinstance(value, np.integer):
        return int(value)
    return value


def spec_as_dict(spec: NodeSpec) -> dict[str, Any]:
    """CLI convenience: a printable view of a node spec."""
    return asdict(spec)
