"""Deployment entry points: the paper's algorithm as a real cluster.

``python -m repro.deploy run`` launches an N-node local cluster — one OS
process per sensor node, gossiping over OS pipes (``--transport process``)
or real TCP sockets (``--transport tcp``) — drives it to structural
quiescence through the per-node HTTP endpoints, and judges agreement
(optionally against the in-memory simulation of the same workload).
``python -m repro.deploy node`` runs a single standalone node, the shape
a container gets in the ``docker-compose`` sketch of
``docs/deployment.md``.
"""

from repro.deploy.cluster import (
    NodeSpec,
    classification_deviation,
    run_cluster,
    run_node,
)
from repro.deploy.workloads import WORKLOADS, Workload, build_workload

__all__ = [
    "NodeSpec",
    "WORKLOADS",
    "Workload",
    "build_workload",
    "classification_deviation",
    "run_cluster",
    "run_node",
]
