"""Deployable workloads: the paper's figure scenarios as (seed, n) recipes.

A deployed cluster has no central place to scatter inputs from, so every
workload here is a *pure function of* ``(name, n, seed)``: each node
process regenerates the full input set locally and takes its own row.
This keeps the node processes self-sufficient (a docker-composed node
needs only its id and the recipe) while guaranteeing that the cluster as
a whole holds exactly the input set the matching in-memory simulation
holds — which is what makes deployment-vs-simulation agreement checks
meaningful.

``fig1`` is the Section 5.3.1 fence-fire scenario behind Figures 1/2
(2-D temperature readings, three Gaussian components); ``fig4`` is the
Section 5.3.2 outlier/robust-average scenario behind Figures 3/4 (good
readings around the origin plus a displaced outlier cloud, ``k = 2``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheme import SummaryScheme
from repro.core.serialization import SummaryCodec, codec_for_scheme
from repro.data.generators import fence_fire_values, outlier_scenario
from repro.schemes.gm import GaussianMixtureScheme

__all__ = ["WORKLOADS", "Workload", "build_workload"]


@dataclass(frozen=True)
class Workload:
    """Everything a node (or the reference simulation) needs to run."""

    name: str
    values: np.ndarray
    scheme: SummaryScheme
    k: int
    codec: SummaryCodec

    @property
    def n(self) -> int:
        return int(self.values.shape[0])


def _fig1(n: int, seed: int) -> tuple[np.ndarray, SummaryScheme, int]:
    values, _ = fence_fire_values(n, seed=seed)
    return values, GaussianMixtureScheme(seed=seed), 3


def _fig4(n: int, seed: int) -> tuple[np.ndarray, SummaryScheme, int]:
    n_outliers = max(1, n // 20)  # the paper's 5% outlier fraction
    scenario = outlier_scenario(
        delta=6.0, n_good=n - n_outliers, n_outliers=n_outliers, seed=seed
    )
    return scenario.values, GaussianMixtureScheme(seed=seed), 2


WORKLOADS = {
    "fig1": _fig1,
    "fig4": _fig4,
}


def build_workload(name: str, n: int, seed: int) -> Workload:
    """Materialise a workload recipe; every caller with the same
    ``(name, n, seed)`` gets byte-identical values."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")
    if n < 2:
        raise ValueError("a cluster needs at least 2 nodes")
    values, scheme, k = builder(n, seed)
    dimension = int(values.shape[1]) if values.ndim > 1 else 1
    return Workload(
        name=name,
        values=values,
        scheme=scheme,
        k=k,
        codec=codec_for_scheme(scheme, dimension),
    )
