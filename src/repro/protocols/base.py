"""The protocol contract every gossip participant implements.

The network engines (:mod:`repro.network.rounds`,
:mod:`repro.network.asynchronous`) are protocol-agnostic: they move opaque
payloads between per-node protocol objects.  Both the classification
protocol and the push-sum baseline implement this interface, which is what
lets the Figure 3/4 benchmarks run the paper's algorithm and its "regular
aggregation" comparator under byte-identical network conditions.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Sequence

__all__ = ["GossipProtocol"]


class GossipProtocol(abc.ABC):
    """Per-node protocol behaviour under gossip scheduling.

    A protocol object owns one node's state.  Engines call
    :meth:`make_payload` when the node is scheduled to transmit and
    :meth:`receive_batch` when messages are delivered.  Payloads are
    opaque to the engine and must be self-contained (they may cross the
    network long after the sender's state has moved on).
    """

    @abc.abstractmethod
    def make_payload(self) -> Optional[Any]:
        """Produce the payload for one outgoing message.

        May mutate local state (the classification protocol halves its
        weights here).  Returning ``None`` means the node has nothing it
        can legally send this time; the engine skips the transmission.
        """

    @abc.abstractmethod
    def receive_batch(self, payloads: Sequence[Any]) -> None:
        """Process one or more delivered payloads atomically.

        Round engines batch every payload delivered to a node within a
        round into a single call, matching the paper's methodology
        ("accumulate all the received collections and run EM once for the
        entire set"); asynchronous engines call with singleton batches.
        """
