"""Push-sum average aggregation — the paper's "regular aggregation" baseline.

Kempe, Dobra and Gehrke's gossip protocol [13] for computing means: every
node keeps a value-mass pair ``(s, w)``, halves both on each send, keeps
one half and ships the other, and adds whatever arrives.  The running
estimate ``s / w`` converges at every node to the average of the inputs.

The paper's Figures 3 and 4 compare their robust (outlier-removing)
average against this baseline, so it implements the same
:class:`~repro.protocols.base.GossipProtocol` contract and runs under the
identical engines, seeds and crash schedules.

Push-sum is in fact the ``k = 1`` centroid instantiation of the generic
algorithm (one collection whose summary is the weighted mean) — a
connection the integration tests verify numerically.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import networkx as nx
import numpy as np

from repro.network.factory import make_engine
from repro.network.failures import FailureModel
from repro.network.kernel import SimulationKernel
from repro.network.simulator import NeighborSelector
from repro.obs.timeseries import TimeSeriesRecorder
from repro.protocols.base import GossipProtocol

__all__ = ["PushSumProtocol", "build_push_sum_network"]


class PushSumProtocol(GossipProtocol):
    """One node of the push-sum averaging protocol.

    The state is ``(s, w)`` with ``s`` a vector (the weighted sum of
    inputs this node has heard of) and ``w`` the corresponding mass.
    """

    def __init__(self, value: np.ndarray) -> None:
        self.s = np.atleast_1d(np.asarray(value, dtype=float)).copy()
        self.w = 1.0

    def make_payload(self) -> Optional[tuple[np.ndarray, float]]:
        """Halve the state; the sent half is the payload."""
        sent = (self.s / 2.0, self.w / 2.0)
        self.s = self.s / 2.0
        self.w = self.w / 2.0
        return sent

    def receive_batch(self, payloads: Sequence[tuple[np.ndarray, float]]) -> None:
        for s, w in payloads:
            self.s = self.s + s
            self.w = self.w + w

    @property
    def estimate(self) -> np.ndarray:
        """The node's current estimate of the global average."""
        if self.w <= 0:
            raise RuntimeError("push-sum node has lost all mass")
        return self.s / self.w


def build_push_sum_network(
    values: Sequence[Any] | np.ndarray,
    graph: nx.Graph,
    seed: int = 0,
    variant: str = "push",
    selector: Optional[NeighborSelector] = None,
    failure_model: Optional[FailureModel] = None,
    engine: str = "rounds",
    mean_interval: float = 1.0,
    delay_range: tuple[float, float] = (0.05, 2.0),
    telemetry: Optional[TimeSeriesRecorder] = None,
) -> tuple[SimulationKernel, list[PushSumProtocol]]:
    """Construct an engine running push-sum over ``values``.

    ``engine`` selects the schedule (``"rounds"`` or ``"async"``) exactly
    as in :func:`repro.protocols.classification.build_classification_network`;
    ``telemetry`` attaches a per-round recorder (push-sum has no summary
    fingerprints, so the convergence gauges are NaN but the transport
    windows are live).
    """
    n = len(values)
    if graph.number_of_nodes() != n:
        raise ValueError(
            f"topology has {graph.number_of_nodes()} nodes but {n} values were given"
        )
    protocols_list = [PushSumProtocol(values[i]) for i in range(n)]
    protocols = {i: protocols_list[i] for i in range(n)}
    built = make_engine(
        engine,
        graph,
        protocols,
        seed=seed,
        selector=selector,
        variant=variant,
        failure_model=failure_model,
        mean_interval=mean_interval,
        delay_range=delay_range,
        telemetry=telemetry,
    )
    return built, protocols_list
