"""Protocols runnable on the network engines.

- :class:`~repro.protocols.classification.ClassificationProtocol` — the
  paper's generic classification algorithm (Algorithm 1);
- :class:`~repro.protocols.push_sum.PushSumProtocol` — Kempe et al.'s
  average aggregation, the "regular aggregation" baseline of Figures 3-4.
"""

from repro.protocols.base import GossipProtocol
from repro.protocols.classification import (
    ClassificationProtocol,
    build_classification_network,
)
from repro.protocols.push_sum import PushSumProtocol, build_push_sum_network

__all__ = [
    "ClassificationProtocol",
    "GossipProtocol",
    "PushSumProtocol",
    "build_classification_network",
    "build_push_sum_network",
]
