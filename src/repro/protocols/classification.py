"""The distributed classification protocol: Algorithm 1 on the network.

Wires a :class:`~repro.core.node.ClassifierNode` into the engines'
:class:`~repro.protocols.base.GossipProtocol` contract and provides the
one-call constructor (:func:`build_classification_network`) the examples,
experiments and tests all use: given values, a scheme, a topology and a
handful of knobs, it returns a ready-to-run engine.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import networkx as nx
import numpy as np

from repro.core.collection import Collection
from repro.core.fingerprint import MergeCache, merge_cache_default
from repro.core.node import ClassifierNode
from repro.core.packed import PackedPayload
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.network.factory import make_engine
from repro.network.failures import FailureModel
from repro.network.kernel import SimulationKernel
from repro.network.links import LinkSchedule
from repro.network.simulator import NeighborSelector
from repro.obs.events import EventSink
from repro.obs.profiling import span
from repro.obs.timeseries import TimeSeriesRecorder
from repro.protocols.base import GossipProtocol

__all__ = ["ClassificationProtocol", "build_classification_network"]


class ClassificationProtocol(GossipProtocol):
    """One node's view of the distributed classification algorithm."""

    def __init__(self, node: ClassifierNode) -> None:
        self.node = node

    def make_payload(self) -> "Optional[list[Collection] | PackedPayload]":
        """Split the local classification; the sent halves are the payload.

        Returns ``None`` when quantisation leaves nothing sendable (every
        local collection holds a single quantum).  Native-tier nodes
        return a zero-copy :class:`~repro.core.packed.PackedPayload`
        instead of a collection list; both are falsy when empty.
        """
        with span("protocol.split"):
            payload = self.node.make_message()
        return payload if payload else None

    def receive_batch(
        self, payloads: "Sequence[list[Collection] | PackedPayload]"
    ) -> None:
        """Pool all delivered collections and merge once (Section 5.3)."""
        node = self.node
        if node.native and all(
            isinstance(payload, PackedPayload) for payload in payloads
        ):
            # Straight through to the array pipeline — the payloads'
            # columns are consumed as-is, nothing is materialised.
            with span("protocol.merge"):
                node.receive_packed(payloads)  # type: ignore[arg-type]
            return
        incoming: list[Collection] = []
        for payload in payloads:
            incoming.extend(payload)
        with span("protocol.merge"):
            node.receive(incoming)

    # Convenience pass-throughs used pervasively by analysis code.
    @property
    def classification(self):
        return self.node.classification

    @property
    def node_id(self) -> int:
        return self.node.node_id


def build_classification_network(
    values: Sequence[Any] | np.ndarray,
    scheme: SummaryScheme,
    k: int,
    graph: nx.Graph,
    seed: int = 0,
    quantization: Optional[Quantization] = None,
    track_aux: bool = False,
    validate: bool = False,
    variant: str = "push",
    selector: Optional[NeighborSelector] = None,
    failure_model: Optional[FailureModel] = None,
    link_schedule: Optional[LinkSchedule] = None,
    event_sink: Optional[EventSink] = None,
    engine: str = "rounds",
    mean_interval: float = 1.0,
    delay_range: tuple[float, float] = (0.05, 2.0),
    merge_cache: Optional[bool] = None,
    stop_on_quiescence: bool = False,
    quiescence_patience: int = 3,
    telemetry: Optional[TimeSeriesRecorder] = None,
) -> tuple[SimulationKernel, list[ClassifierNode]]:
    """Construct an engine running Algorithm 1 over ``values``.

    ``values[i]`` becomes node ``i``'s input; the graph must therefore
    have exactly ``len(values)`` nodes.  Returns the engine and the
    underlying :class:`~repro.core.node.ClassifierNode` list (index =
    node id) for direct state inspection.

    ``engine`` selects the schedule — ``"rounds"`` (the default, the
    paper's Section 5.3 methodology) or ``"async"`` (the Section 6
    Poisson model; ``mean_interval`` / ``delay_range`` then apply).
    Every other knob means the same thing on either schedule.

    ``merge_cache`` enables the run-scoped receive memoisation cache
    shared by all nodes (``None`` defers to
    :func:`repro.core.fingerprint.merge_cache_default`, i.e. the
    ``REPRO_MERGE_CACHE`` environment toggle — on by default).  Cached
    receipts are byte-identical to uncached ones; see
    ``docs/performance.md``.  ``stop_on_quiescence`` /
    ``quiescence_patience`` configure the kernel's structural early
    exit (off by default, opt-in for sweeps).

    ``event_sink`` (or the ambient :func:`repro.obs.context.tracing`
    sink) is wired to both the engine (transport events) and every node
    (split/merge events), giving one coherent trace per run.
    ``telemetry`` (or the ambient :func:`repro.obs.timeseries.telemetry`
    scope) attaches a per-round convergence recorder to the engine.
    """
    n = len(values)
    if graph.number_of_nodes() != n:
        raise ValueError(
            f"topology has {graph.number_of_nodes()} nodes but {n} values were given"
        )
    quantization = quantization or Quantization()
    if merge_cache is None:
        merge_cache = merge_cache_default()
    cache = (
        MergeCache() if merge_cache and scheme.supports_fingerprints else None
    )
    nodes = [
        ClassifierNode(
            node_id=i,
            value=values[i],
            scheme=scheme,
            k=k,
            quantization=quantization,
            track_aux=track_aux,
            n_inputs=n if track_aux else None,
            validate=validate,
            event_sink=event_sink,
            merge_cache=cache,
        )
        for i in range(n)
    ]
    protocols = {i: ClassificationProtocol(nodes[i]) for i in range(n)}
    built = make_engine(
        engine,
        graph,
        protocols,
        seed=seed,
        selector=selector,
        variant=variant,
        failure_model=failure_model,
        link_schedule=link_schedule,
        event_sink=event_sink,
        mean_interval=mean_interval,
        delay_range=delay_range,
        merge_cache=cache,
        stop_on_quiescence=stop_on_quiescence,
        quiescence_patience=quiescence_patience,
        telemetry=telemetry,
    )
    return built, nodes
