"""numba-compiled tier: jitted wrappers over the scalar kernel bodies.

Imported only when :data:`repro.native.HAVE_NUMBA` is true; import
failure anywhere here falls back to the numpy tier (the guard lives in
``repro.native.kernels``).  The jitted functions are the *same* Python
bodies the fallback tests exercise (``repro.native._scalar``), so both
tiers share one source of truth for the merge order.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # type: ignore[import-not-found]

from repro.native import _scalar

# Rebind the helper inside the scalar module so the jitted greedy_core
# resolves its global reference to the jitted dispatcher.
_scalar.merge_pair = njit(cache=True)(_scalar.merge_pair)
_greedy_core = njit(cache=True)(_scalar.greedy_core)


def greedy_partition(positions, weights, heavy, k):
    """Jitted masked greedy closest-pair partition (see kernels.greedy_partition)."""
    points = np.ascontiguousarray(positions, dtype=np.float64).copy()
    masses = np.ascontiguousarray(weights, dtype=np.float64).copy()
    heavy_mut = np.ascontiguousarray(heavy, dtype=np.bool_).copy()
    dead, nxt = _greedy_core(points, masses, heavy_mut, k)
    return _scalar.groups_from_links(dead, nxt)
