"""Compiled execution tier for the receive/merge inner loop.

The gossip hot path (ISSUE 9) spends its time in three primitives: the
hard-EM reduction behind :mod:`repro.ml.reduction`, the greedy
closest-pair partition behind :mod:`repro.schemes`, and the packed
merge/quanta arithmetic in :class:`repro.core.node.ClassifierNode` and
:class:`repro.mega.ReceiveSolver`.  This package hosts batched kernels
for all three, in two tiers:

``numba``
    JIT-compiled scalar loops, used when :mod:`numba` imports cleanly
    (install with ``pip install repro[native]``).
``fallback``
    Pure-numpy batched implementations, always available.  These are
    the *reference* semantics — the numba tier must match them byte
    for byte, and the hypothesis parity suites in
    ``tests/native/test_native_parity.py`` enforce it.

The ``REPRO_NATIVE`` environment variable gates the whole tier
(default on): with ``REPRO_NATIVE=0`` nodes run the original
object-per-collection receive path and kernels fall back to their
unbatched equivalents, which is what the CI fallback-parity leg pins
against.  Import failure of numba is never an error — the fallback is
auto-selected, exactly as the packed (PR 4) and arena (PR 8) tiers
degrade.
"""

from __future__ import annotations

import os
from typing import Any

__all__ = [
    "HAVE_NUMBA",
    "TIER",
    "native_default",
    "native_enabled",
    "status",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore[import-not-found]

    HAVE_NUMBA = True
    _NUMBA_VERSION: str | None = getattr(numba, "__version__", "unknown")
except Exception:  # pragma: no cover - the container default
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False
    _NUMBA_VERSION = None

#: Which kernel tier backs the batched entry points in
#: :mod:`repro.native.kernels`.  ``numba`` when the JIT imported,
#: ``fallback`` (pure numpy) otherwise.
TIER = "numba" if HAVE_NUMBA else "fallback"


def native_default() -> bool:
    """Whether ``REPRO_NATIVE`` asks for the native tier (default on).

    Read per call, not at import, so tests can monkeypatch the
    environment and flip tiers without reloading modules.
    """
    return os.environ.get("REPRO_NATIVE", "1").lower() not in ("0", "false", "no", "off")


def native_enabled() -> bool:
    """True when the native receive/merge tier should be used."""
    return native_default()


def status() -> dict[str, Any]:
    """Report which execution tier is active (surfaced by ``repro.obs.report``)."""
    enabled = native_enabled()
    return {
        "requested": native_default(),
        "enabled": enabled,
        "tier": TIER if enabled else "off",
        "numba_available": HAVE_NUMBA,
        "numba_version": _NUMBA_VERSION,
    }
