"""Batched kernels for the receive/merge hot loop.

Each kernel here replaces a Python-level loop over collections or
groups with one batched computation, under a strict byte-parity
contract with the unbatched reference it replaces (the schemes'
``merge_set_packed``, :func:`repro.ml.gaussian.pool_moments`, and the
incremental greedy partition).  The parity rules the implementations
lean on, enforced empirically by ``tests/native/test_kernels.py``:

- **Equal-size batching.**  numpy's pairwise summation splits a
  reduction by its lane length only, so reducing a gathered
  ``(G, m, ...)`` block over axis 1 is byte-identical to reducing each
  group's ``(m, ...)`` block over axis 0.  Groups are therefore
  bucketed by size and each bucket is reduced in one shot.
- **Sequential einsum.**  ``np.einsum`` contracts its summation index
  with a sequential C loop (no pairwise splitting), in both the
  per-group and the batched spelling.
- **Sequential emulation of Python ``sum``.**  Where the reference is
  a Python-level ``sum(...)`` (strictly left-to-right, seeded with
  ``0``), the batch accumulates with an explicit zero-seeded loop over
  the group slot axis.
- **numba only where order-safe.**  The jitted tier is dispatched only
  for integer arithmetic and float lanes shorter than numpy's pairwise
  unroll width (8), where a scalar-sequential loop provably matches.

Everything below is pure computation: no scheme objects, no
Collections, no I/O.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.native import HAVE_NUMBA, native_enabled

__all__ = [
    "compact_labels",
    "greedy_partition",
    "maximin_seed_walk",
    "pairwise_sq_matrix",
    "pool_moments_groups",
    "split_quanta",
    "weighted_average_groups",
]

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    from repro.native import _numba
else:
    _numba = None  # type: ignore[assignment]

#: numpy's pairwise-summation unroll width: reductions over lanes
#: shorter than this are strictly sequential, so a scalar loop (numba)
#: produces identical bytes.  At or above it, only the equal-size
#: batched numpy forms are parity-safe.
_PAIRWISE_UNROLL = 8


# ----------------------------------------------------------------------
# Quanta arithmetic
# ----------------------------------------------------------------------
def split_quanta(quanta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-collection gossip split: returns ``(kept, sent)`` quanta.

    Mirrors ``ClassifierNode.make_message``: a node sends half of each
    collection's quanta (rounded down) and keeps the rest.  Integer
    arithmetic — exact in every tier.
    """
    sent = quanta // 2
    return quanta - sent, sent


# ----------------------------------------------------------------------
# Hard-EM reduction primitives
# ----------------------------------------------------------------------
def pairwise_sq_matrix(points: np.ndarray) -> np.ndarray:
    """Full squared-distance matrix with byte-parity to the row form.

    Computed as ``(deltas ** 2).sum(axis=2)`` so each entry reduces a
    length-``d`` lane exactly like the per-row reference
    ``np.sum((points - points[i]) ** 2, axis=1)`` — same lane length,
    same pairwise splits, same bytes, for any ``d``.
    """
    deltas = points[:, None, :] - points[None, :, :]
    return (deltas**2).sum(axis=2)


def maximin_seed_walk(
    weights: np.ndarray, distance_matrix: np.ndarray, k: int
) -> list[int]:
    """Deterministic maximin seeding on a precomputed distance matrix.

    Byte-identical to the walk in ``repro.ml.reduction``: heaviest
    component first, then greedy farthest-point, ties to the lowest
    index, stopping early when every remaining point coincides with a
    seed.  Returns the chosen component indices (callers take
    ``distance_matrix[:, chosen]`` as the seed distances).
    """
    first = int(weights.argmax())
    chosen = [first]
    closest_sq = distance_matrix[first]
    for _ in range(1, k):
        candidate = int(closest_sq.argmax())
        if closest_sq[candidate] <= 0.0:
            break
        chosen.append(candidate)
        closest_sq = np.minimum(closest_sq, distance_matrix[candidate])
    return chosen


def compact_labels(assignment: np.ndarray) -> tuple[np.ndarray, int]:
    """Relabel an assignment to compact labels ``0..occupied-1``.

    Byte-equal to ``np.searchsorted(np.unique(a), a)`` (occupied labels
    keep their sorted order) without the sort: one bincount over the
    small label space and a cumulative-sum lookup.
    """
    occupied = np.bincount(assignment) > 0
    lookup = np.cumsum(occupied) - 1
    return lookup[assignment], int(lookup[-1]) + 1


# ----------------------------------------------------------------------
# Greedy closest-pair partition (Algorithm 2)
# ----------------------------------------------------------------------
def greedy_partition(
    positions: np.ndarray,
    weights: np.ndarray,
    heavy: np.ndarray,
    k: int,
) -> list[list[int]]:
    """Masked greedy closest-pair partition.

    Same greedy merge sequence as the incremental delete-based loop it
    replaces, but dead groups are masked with ``inf`` rows/columns
    instead of physically deleted, so each merge costs one recomputed
    row instead of an O(l^2) matrix copy.  Row-major ``argmin`` over
    the masked matrix visits surviving entries in the same order the
    compacted matrix would, so exact ties break identically.

    ``heavy[i]`` is False when collection ``i`` carries the minimum
    weight (rule 2: such singletons merge into their nearest group
    first).  Returns groups of original indices, survivors in
    original-index order.
    """
    n = positions.shape[0]
    if n == 0:
        raise ValueError("cannot partition zero collections")
    if (
        _numba is not None
        and native_enabled()
        and positions.shape[1] < _PAIRWISE_UNROLL
    ):  # pragma: no cover - numba-only tier
        return _numba.greedy_partition(positions, weights, heavy, k)
    return _greedy_partition_numpy(positions, weights, heavy, k)


def _greedy_partition_numpy(
    positions: np.ndarray,
    weights: np.ndarray,
    heavy: np.ndarray,
    k: int,
) -> list[list[int]]:
    n = positions.shape[0]
    groups: list[list[int] | None] = [[i] for i in range(n)]
    points = positions.copy()
    masses = weights.astype(float, copy=True)
    has_heavy = heavy.astype(bool, copy=True)
    dead = np.zeros(n, dtype=bool)
    deltas = points[:, None, :] - points[None, :, :]
    distances_sq = np.einsum("abd,abd->ab", deltas, deltas)
    np.fill_diagonal(distances_sq, np.inf)
    alive = n

    def merge(a: int, b: int) -> None:
        """Fold group ``b`` into group ``a`` (requires ``a < b``)."""
        nonlocal alive
        total = masses[a] + masses[b]
        if not np.array_equal(points[a], points[b]):
            # Coincident points average to themselves; skipping the
            # arithmetic keeps the result byte-exact (no float dust),
            # which converged states rely on for content addressing.
            points[a] = (masses[a] * points[a] + masses[b] * points[b]) / total
        masses[a] = total
        groups[a].extend(groups[b])  # type: ignore[union-attr]
        has_heavy[a] = True  # merged groups always have >= 2 members
        groups[b] = None
        dead[b] = True
        distances_sq[b, :] = np.inf
        distances_sq[:, b] = np.inf
        row = ((points - points[a]) ** 2).sum(axis=1)
        row[dead] = np.inf
        row[a] = np.inf
        distances_sq[a, :] = row
        distances_sq[:, a] = row
        alive -= 1

    # Rule 2: merge every minimum-weight singleton with its nearest group.
    while alive > 1:
        lonely = next(
            (
                g
                for g in range(n)
                if groups[g] is not None and len(groups[g]) == 1 and not has_heavy[g]
            ),
            None,
        )
        if lonely is None:
            break
        other = int(np.argmin(distances_sq[lonely]))
        merge(min(lonely, other), max(lonely, other))

    # Rule 1: enforce the k bound by merging closest pairs.
    while alive > k:
        a, b = divmod(int(np.argmin(distances_sq)), n)
        merge(min(a, b), max(a, b))

    return [group for group in groups if group is not None]


# ----------------------------------------------------------------------
# Batched group merges
# ----------------------------------------------------------------------
def _buckets_by_size(groups: Sequence[Sequence[int]]) -> dict[int, list[int]]:
    by_size: dict[int, list[int]] = {}
    for gi, group in enumerate(groups):
        by_size.setdefault(len(group), []).append(gi)
    return by_size


def weighted_average_groups(
    rows: np.ndarray,
    quanta: np.ndarray,
    groups: Sequence[Sequence[int]],
) -> np.ndarray:
    """Batched weighted average of row groups (centroid/histogram merge).

    Byte-parity contract with the schemes' sequential
    ``merge_set_packed``: per group, ``sum(float(q_i) * row_i) / total``
    accumulated left-to-right from zero, with byte-identical groups
    short-circuiting to a copy of their first row.  Groups are bucketed
    by size and each bucket runs as one zero-seeded accumulation over
    the slot axis.
    """
    by_size = _buckets_by_size(groups)
    # One size bucket covers every group (the common receive shape:
    # all-pairs merges): its rows are already in group order, so the
    # gather into ``out`` is skipped entirely.
    single_bucket = len(by_size) == 1
    out = None
    if not single_bucket:
        out = np.empty((len(groups),) + rows.shape[1:], dtype=float)
    for m, gids in by_size.items():
        idx = np.array([groups[gi] for gi in gids], dtype=np.intp)
        sub = rows[idx]  # (G, m, ...)
        if m == 1:
            merged = sub[:, 0].copy()
        else:
            identical = (sub == sub[:, :1]).all(axis=tuple(range(1, sub.ndim)))
            w = quanta[idx].astype(float)
            acc = np.zeros_like(sub[:, 0])
            total = np.zeros(len(gids))
            for j in range(m):
                acc = acc + w[:, j, None] * sub[:, j]
                total = total + w[:, j]
            merged = acc / total[:, None]
            if identical.any():
                merged = np.where(identical[:, None], sub[:, 0], merged)
        if single_bucket:
            return merged
        assert out is not None
        out[gids] = merged
    return out


def pool_moments_groups(
    quanta: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
    groups: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Gaussian moment pooling over row groups (GM merge).

    Byte-parity contract with :func:`repro.ml.gaussian.pool_moments`
    applied per group: identical components short-circuit to
    ``(mean[0], symmetrize(cov[0]))``; otherwise the weighted mean,
    scatter and within-group terms are computed with the same lane
    lengths (equal-size bucketing) and the same sequential einsum
    contractions, so every intermediate rounds identically.
    """
    # Imported here, not at module scope: repro.ml.reduction imports
    # this module, so a top-level repro.ml import would be circular.
    from repro.ml.linalg import symmetrize

    d = means.shape[1]
    by_size = _buckets_by_size(groups)
    single_bucket = len(by_size) == 1
    out_means = out_covs = None
    if not single_bucket:
        out_means = np.empty((len(groups), d))
        out_covs = np.empty((len(groups), d, d))
    for m, gids in by_size.items():
        idx = np.array([groups[gi] for gi in gids], dtype=np.intp)
        sub_means = means[idx]  # (G, m, d)
        sub_covs = covs[idx]  # (G, m, d, d)
        if m == 1:
            mean = sub_means[:, 0].copy()
            cov = symmetrize(sub_covs[:, 0])
        else:
            identical = (sub_means == sub_means[:, :1]).all(axis=(1, 2)) & (
                sub_covs == sub_covs[:, :1]
            ).all(axis=(1, 2, 3))
            w = quanta[idx].astype(float)
            total = w.sum(axis=1)
            mean = (w[:, :, None] * sub_means).sum(axis=1) / total[:, None]
            centered = sub_means - mean[:, None, :]
            scatter = np.einsum("gi,gij,gik->gjk", w, centered, centered)
            within = np.einsum("gi,gijk->gjk", w, sub_covs)
            cov = symmetrize((within + scatter) / total[:, None, None])
            if identical.any():
                mean = np.where(identical[:, None], sub_means[:, 0], mean)
                cov = np.where(
                    identical[:, None, None], symmetrize(sub_covs[:, 0]), cov
                )
        if single_bucket:
            return mean, cov
        assert out_means is not None and out_covs is not None
        out_means[gids] = mean
        out_covs[gids] = cov
    return out_means, out_covs
