"""Scalar (loop-level) kernel bodies shared by the numba tier.

These are plain-Python functions written in the restricted style numba
compiles (explicit loops, preallocated arrays, no closures): the numba
tier in :mod:`repro.native._numba` jits them unchanged, and the test
suite exercises them *uncompiled* so their byte-parity with the numpy
fallbacks is verified even where numba is not installed.

Order discipline: every float reduction here runs over a lane shorter
than numpy's pairwise unroll width (the dispatch in
``repro.native.kernels`` guarantees ``d < 8``), where numpy reductions
are strictly sequential — so these scalar loops round identically to
the vectorized forms.
"""

from __future__ import annotations

import numpy as np


def merge_pair(points, masses, size, has_heavy, dead, nxt, tail, dist, a, b):
    """Fold group ``b`` into group ``a`` (requires ``a < b``), in place."""
    n, d = points.shape
    total = masses[a] + masses[b]
    same = True
    for t in range(d):
        if points[a, t] != points[b, t]:
            same = False
            break
    if not same:
        # Coincident points average to themselves; skipping the
        # arithmetic keeps merged positions byte-exact (no float dust).
        for t in range(d):
            points[a, t] = (masses[a] * points[a, t] + masses[b] * points[b, t]) / total
    masses[a] = total
    size[a] += size[b]
    has_heavy[a] = True
    nxt[tail[a]] = b
    tail[a] = tail[b]
    dead[b] = True
    for j in range(n):
        dist[b, j] = np.inf
        dist[j, b] = np.inf
    for j in range(n):
        if dead[j] or j == a:
            dist[a, j] = np.inf
            dist[j, a] = np.inf
        else:
            s = 0.0
            for t in range(d):
                diff = points[j, t] - points[a, t]
                s += diff * diff
            dist[a, j] = s
            dist[j, a] = s


def greedy_core(points, masses, heavy, k):
    """Masked greedy closest-pair loop over preallocated scalar state.

    Mutates its array arguments; callers pass copies.  Returns
    ``(dead, nxt)``: groups are the non-dead indices, each group's
    members chained through ``nxt`` (terminated by ``-1``) in merge
    order — exactly the order the list-based loop's ``extend`` builds.
    """
    n, d = points.shape
    dist = np.empty((n, n))
    for i in range(n):
        dist[i, i] = np.inf
        for j in range(i + 1, n):
            s = 0.0
            for t in range(d):
                diff = points[i, t] - points[j, t]
                s += diff * diff
            dist[i, j] = s
            dist[j, i] = s
    dead = np.zeros(n, np.bool_)
    size = np.ones(n, np.int64)
    nxt = np.full(n, -1, np.int64)
    tail = np.arange(n)
    alive = n

    # Rule 2: merge every minimum-weight singleton with its nearest group.
    while alive > 1:
        lonely = -1
        for g in range(n):
            if (not dead[g]) and size[g] == 1 and (not heavy[g]):
                lonely = g
                break
        if lonely == -1:
            break
        other = 0
        best = np.inf
        for j in range(n):
            if dist[lonely, j] < best:
                best = dist[lonely, j]
                other = j
        a = lonely if lonely < other else other
        b = other if lonely < other else lonely
        merge_pair(points, masses, size, heavy, dead, nxt, tail, dist, a, b)
        alive -= 1

    # Rule 1: enforce the k bound by merging closest pairs.
    while alive > k:
        bi = 0
        bj = 0
        best = np.inf
        for i in range(n):
            for j in range(n):
                if dist[i, j] < best:
                    best = dist[i, j]
                    bi = i
                    bj = j
        a = bi if bi < bj else bj
        b = bj if bi < bj else bi
        merge_pair(points, masses, size, heavy, dead, nxt, tail, dist, a, b)
        alive -= 1

    return dead, nxt


def groups_from_links(dead, nxt):
    """Materialise the member chains from :func:`greedy_core` as lists."""
    groups = []
    for g in range(dead.shape[0]):
        if not dead[g]:
            members = []
            cur = g
            while cur != -1:
                members.append(int(cur))
                cur = int(nxt[cur])
            groups.append(members)
    return groups
