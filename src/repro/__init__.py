"""repro — Distributed Data Classification in Sensor Networks (PODC 2010).

A full reproduction of Eyal, Keidar and Rom's gossip-based distributed
classification system:

- :mod:`repro.core` — the generic algorithm (Algorithm 1), quantised
  weights, mixture-space auxiliaries and convergence machinery;
- :mod:`repro.schemes` — the centroid (Algorithm 2), Gaussian-Mixture
  (Section 5) and histogram instantiations;
- :mod:`repro.ml` — the machine-learning substrate (Gaussians, GMMs,
  k-means, EM, EM-based mixture reduction);
- :mod:`repro.network` — the event-driven / round-based sensor-network
  simulator with crash injection;
- :mod:`repro.protocols` — Algorithm 1 and the push-sum baseline wired
  onto the simulator;
- :mod:`repro.data`, :mod:`repro.analysis` — the paper's synthetic
  workloads and measurement code;
- :mod:`repro.experiments` — one module per figure of the evaluation.

Quickstart::

    import numpy as np
    from repro import build_classification_network, GaussianMixtureScheme
    from repro.network import topology

    values = np.random.default_rng(7).normal(size=(64, 2))
    engine, nodes = build_classification_network(
        values, GaussianMixtureScheme(seed=7), k=3, graph=topology.complete(64)
    )
    engine.run(rounds=30)
    print(nodes[0].classification)
"""

from repro.core import (
    Classification,
    ClassifierNode,
    Collection,
    ConvergenceDetector,
    MixtureVector,
    Quantization,
    SummaryScheme,
    classification_distance,
    disagreement,
)
from repro.protocols import (
    ClassificationProtocol,
    PushSumProtocol,
    build_classification_network,
    build_push_sum_network,
)
from repro.schemes import (
    CentroidScheme,
    GaussianMixtureScheme,
    GaussianSummary,
    HistogramScheme,
    classification_to_gmm,
)

__version__ = "1.0.0"

__all__ = [
    "CentroidScheme",
    "Classification",
    "ClassificationProtocol",
    "ClassifierNode",
    "Collection",
    "ConvergenceDetector",
    "GaussianMixtureScheme",
    "GaussianSummary",
    "HistogramScheme",
    "MixtureVector",
    "PushSumProtocol",
    "Quantization",
    "SummaryScheme",
    "__version__",
    "build_classification_network",
    "build_push_sum_network",
    "classification_distance",
    "classification_to_gmm",
    "disagreement",
]
