"""Mixture reduction: grouping an l-GM into a k-GM via Expectation Maximization.

Section 5.2 of the paper: when a node accumulates more than ``k``
collections, it must merge some of them.  The ideal grouping maximises the
likelihood of the ``l``-component mixture under the best ``k``-component
mixture, which is NP-hard, so — "following common practice" — the paper
approximates it with EM.  Here the *data points* of the EM are themselves
weighted Gaussians (the collections), so the E-step scores a candidate
group by the **expected** log-density of an inner Gaussian under the
group's moment-matched outer Gaussian (see
:func:`repro.ml.gaussian.expected_log_density`), and the M-step is the
closed-form moment match of :func:`repro.ml.gaussian.pool_moments`.

Assignments are *hard* because the generic algorithm's ``partition`` must
return a partition — a collection is merged wholly into one group, never
fractionally shared (sharing happens upstream, through weight splitting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Optional

from repro.ml.gaussian import pool_moments
from repro.ml.gmm import GaussianMixtureModel
from repro.ml.linalg import (
    cholesky_log_det_batch,
    regularize_covariance,
    triangular_inverse_batch,
)
from repro.native.kernels import (
    compact_labels,
    maximin_seed_walk,
    pairwise_sq_matrix,
)
from repro.obs.profiling import span

__all__ = ["ReductionResult", "em_iterations_total", "reduce_mixture"]

#: Process-wide count of hard-EM iterations executed by
#: :func:`reduce_mixture`.  Telemetry reads this as a monotone gauge and
#: reports per-round deltas; it is observational only and never feeds
#: back into the algorithm.
_EM_ITERATIONS_TOTAL = 0


def em_iterations_total() -> int:
    """Cumulative EM iterations run by :func:`reduce_mixture` so far."""
    return _EM_ITERATIONS_TOTAL

#: Ridge applied to group covariances when *scoring* only; the reported
#: moment-matched covariances are exact.
_SCORING_RIDGE = 1e-6

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Below this component count the maximin seeding runs on a fused
#: pairwise distance matrix (one batched computation reused by the seed
#: walk *and* the initial assignment).  The gossip receive path always
#: sits far below it; centralized reductions of thousands of components
#: keep the O(l*k) row-at-a-time form to avoid an O(l^2 d) intermediate.
_FUSED_PAIRWISE_MAX = 64


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of an l-GM -> k-GM reduction.

    ``model`` is ``None`` when the caller requested ``build_model=False``
    (the schemes' partition hot path only consumes ``groups``).
    """

    groups: tuple[tuple[int, ...], ...]
    model: Optional[GaussianMixtureModel]
    score: float
    iterations: int
    converged: bool


def _group_moments(
    groups: list[list[int]],
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Moment-match each group; returns (group_weights, group_means, group_covs)."""
    d = means.shape[1]
    group_weights = np.empty(len(groups))
    group_means = np.empty((len(groups), d))
    group_covs = np.empty((len(groups), d, d))
    for j, group in enumerate(groups):
        idx = np.asarray(group, dtype=int)
        group_weights[j] = weights[idx].sum()
        group_means[j], group_covs[j] = pool_moments(weights[idx], means[idx], covs[idx])
    return group_weights, group_means, group_covs


def _moments_from_assignment(
    compact: np.ndarray,
    k_occupied: int,
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment-sum moment match over a compact hard assignment.

    ``compact`` holds group labels in ``0..k_occupied-1`` with every label
    occupied.  One pass of ``np.bincount``/``np.add.at`` replaces the
    Python loop over groups: this is the M-step for *all* groups at once.
    """
    d = means.shape[1]
    group_weights = np.bincount(compact, weights=weights, minlength=k_occupied)
    group_means = np.zeros((k_occupied, d))
    np.add.at(group_means, compact, weights[:, None] * means)
    group_means /= group_weights[:, None]
    centered = means - group_means[compact]
    spread = covs + centered[:, :, None] * centered[:, None, :]
    group_covs = np.zeros((k_occupied, d, d))
    np.add.at(group_covs, compact, weights[:, None, None] * spread)
    group_covs /= group_weights[:, None, None]
    group_covs = (group_covs + np.swapaxes(group_covs, -2, -1)) * 0.5
    return group_weights, group_means, group_covs


def _score_features(means: np.ndarray, covs: np.ndarray) -> np.ndarray:
    """Per-component feature rows ``[vec(C_i + mu_i mu_i^T), mu_i, 1]``.

    The expected log-density of component ``i`` under any group Gaussian
    is *linear* in these features (see :func:`_score_matrix`), so they are
    computed once per reduction and reused by every EM iteration.
    """
    l, d = means.shape
    spread = covs + means[:, :, None] * means[:, None, :]
    features = np.empty((l, d * d + d + 1))
    features[:, : d * d] = spread.reshape(l, d * d)
    features[:, d * d : d * d + d] = means
    features[:, -1] = 1.0
    return features


def _score_matrix(
    features: np.ndarray,
    d: int,
    group_weights: np.ndarray,
    group_means: np.ndarray,
    group_covs: np.ndarray,
) -> np.ndarray:
    """Expected complete-data log-likelihood of component i under group j.

    Vectorised form of :func:`repro.ml.gaussian.expected_log_density`
    over all components and groups at once: for group covariance ``S``,
    precision ``P = S^-1`` and component ``(mu_i, C_i)``::

        log pi_j - 1/2 (d log 2pi + log|S| + tr(P C_i) + (mu_i-m_j)^T P (mu_i-m_j))

    The score decomposes linearly over the per-component features
    ``[vec(C_i + mu_i mu_i^T), mu_i, 1]`` with per-group coefficients
    ``[-1/2 vec(P_j), P_j m_j, const_j]``: both ``tr(P C)`` and the
    quadratic form are Frobenius inner products against ``P_j``.  The
    whole E-step is then a single ``(l, d^2+d+1) @ (d^2+d+1, k)`` matrix
    product — no per-group ``inv``/``slogdet`` calls, no ``(l, k, d)``
    intermediates.

    For ``d == 2`` — every sensor-plane workload in the paper — the
    (ridge-regularised) precisions and log-determinants come from the
    closed-form 2x2 adjugate instead of a batched Cholesky; the gossip
    hot path calls this on 5-group stacks where the LAPACK round trip
    costs more than the whole remaining E-step.  Larger ``d`` keeps the
    batched factorisation.  This routine is the *single* scoring
    definition shared by the EM loop and the merge-cache no-op
    certificates, so every consumer sees identical scores.
    """
    k = group_weights.shape[0]
    log_pi = np.log(group_weights / group_weights.sum())
    if d == 2:
        # Inline regularize_covariance for the 2x2 stack: symmetrise,
        # then add a relative ridge on the diagonal.
        off = (group_covs[:, 0, 1] + group_covs[:, 1, 0]) * 0.5
        a = group_covs[:, 0, 0]
        e = group_covs[:, 1, 1]
        floor = np.maximum((a + e) * (0.5 * _SCORING_RIDGE), _SCORING_RIDGE)
        a = a + floor
        e = e + floor
        det = a * e - off * off
        log_dets = np.log(det)
        inv_det = 1.0 / det
        p00 = e * inv_det
        p11 = a * inv_det
        p01 = -off * inv_det
        m0 = group_means[:, 0]
        m1 = group_means[:, 1]
        s0 = p00 * m0 + p01 * m1
        s1 = p01 * m0 + p11 * m1
        consts = log_pi - 0.5 * (2.0 * _LOG_2PI + log_dets + (s0 * m0 + s1 * m1))
        coefficients = np.empty((k, 7))
        coefficients[:, 0] = -0.5 * p00
        coefficients[:, 1] = -0.5 * p01
        coefficients[:, 2] = coefficients[:, 1]
        coefficients[:, 3] = -0.5 * p11
        coefficients[:, 4] = s0
        coefficients[:, 5] = s1
        coefficients[:, 6] = consts
        return features @ coefficients.T
    regularized = regularize_covariance(group_covs, _SCORING_RIDGE)
    lowers, log_dets = cholesky_log_det_batch(regularized, _SCORING_RIDGE)
    lower_invs = triangular_inverse_batch(lowers)
    precisions = np.matmul(np.swapaxes(lower_invs, -2, -1), lower_invs)
    scaled_means = np.einsum("jab,jb->ja", precisions, group_means)
    mean_quads = np.einsum("ja,ja->j", scaled_means, group_means)
    consts = log_pi - 0.5 * (d * _LOG_2PI + log_dets + mean_quads)
    coefficients = np.concatenate(
        [-0.5 * precisions.reshape(k, d * d), scaled_means, consts[:, None]],
        axis=1,
    )
    return features @ coefficients.T


def _maximin_seeds(weights: np.ndarray, means: np.ndarray, k: int) -> np.ndarray:
    """Deterministic seed selection: heaviest first, then farthest-point.

    The classic 2-approximation for k-centers: each subsequent seed is
    the component farthest (in mean distance) from all chosen seeds.
    Deterministic by construction — ties resolve to the lowest index.
    """
    first = int(np.argmax(weights))
    chosen = [first]
    closest_sq = np.sum((means - means[first]) ** 2, axis=1)
    for _ in range(1, k):
        candidate = int(np.argmax(closest_sq))
        if closest_sq[candidate] <= 0.0:
            break  # all remaining components coincide with a seed
        chosen.append(candidate)
        closest_sq = np.minimum(
            closest_sq, np.sum((means - means[candidate]) ** 2, axis=1)
        )
    return means[chosen]


def reduce_mixture(
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 50,
    build_model: bool = True,
    compute_score: bool = False,
) -> ReductionResult:
    """Group ``l`` weighted Gaussians into at most ``k`` groups by hard EM.

    Parameters
    ----------
    weights, means, covs:
        The input components: shapes ``(l,)``, ``(l, d)``, ``(l, d, d)``.
    k:
        Maximum number of output groups.
    rng:
        Accepted for API stability; the reduction is fully deterministic
        (maximin seeding), so the generator is not consulted.
    max_iterations:
        Hard cap on EM iterations; hard-assignment EM either cycles or
        reaches a fixed point, and the fixed point is detected exactly.
    build_model:
        When false, skip constructing the moment-matched output mixture
        (``result.model`` is ``None``).  The scheme partition hot path
        only needs ``groups``, so it opts out of the extra k moment
        matches per call.
    compute_score:
        When false (the default), ``result.score`` is reported as 0.0
        and the per-iteration best-score gather is skipped except when
        an empty-group repair needs it.  The assignment sequence — and
        therefore ``groups`` — is identical either way.

    Returns
    -------
    ReductionResult
        ``groups`` partitions ``range(l)``; ``model`` is the
        moment-matched reduced mixture; ``score`` is the summed
        weight-scaled expected log-likelihood the assignment achieves.
    """
    weights = np.asarray(weights, dtype=float)
    means = np.atleast_2d(np.asarray(means, dtype=float))
    covs = np.asarray(covs, dtype=float)
    if covs.ndim == 2:
        covs = covs[None, :, :]
    l = weights.shape[0]
    if means.shape[0] != l or covs.shape[0] != l:
        raise ValueError("weights, means and covs must align")
    if k < 1:
        raise ValueError("k must be at least 1")

    if l <= k:
        groups = [[i] for i in range(l)]
        model = None
        if build_model:
            group_weights, group_means, group_covs = _group_moments(
                groups, weights, means, covs
            )
            model = GaussianMixtureModel(group_weights, group_means, group_covs)
        return ReductionResult(
            groups=tuple(tuple(group) for group in groups),
            model=model,
            score=0.0,
            iterations=0,
            converged=True,
        )

    # Seed group centres deterministically: the heaviest component first,
    # then greedy farthest-point (maximin) selection.  Unlike randomised
    # k-means++ this *always* covers well-separated clusters, so a node
    # can never draw an unlucky seeding that merges a distant outlier
    # cluster into the bulk — an irreversible mistake under the
    # algorithm's lossy compression (merged collections never separate).
    if l <= _FUSED_PAIRWISE_MAX:
        # Gossip-sized inputs: one fused pairwise matrix feeds both the
        # seed walk and the initial assignment.  Byte-identical to the
        # row-at-a-time form below (same lane lengths per reduction).
        distance_matrix = pairwise_sq_matrix(means)
        chosen = maximin_seed_walk(weights, distance_matrix, k)
        distances_sq = distance_matrix[:, chosen]
    else:
        seeds = _maximin_seeds(weights, means, k)
        distances_sq = np.sum((means[:, None, :] - seeds[None, :, :]) ** 2, axis=2)
    assignment = distances_sq.argmin(axis=1)

    converged = False
    iteration = 0
    score = 0.0
    d = means.shape[1]
    features = _score_features(means, covs)
    with span("ml.reduce_mixture"):
        for iteration in range(1, max_iterations + 1):
            # Relabel occupied groups compactly (occupied labels keep
            # their sorted order, matching the old group-list scan) and
            # moment-match them all in one segment-sum pass.
            compact, occupied_count = compact_labels(assignment)
            group_weights, group_means, group_covs = _moments_from_assignment(
                compact, occupied_count, weights, means, covs
            )
            scores = _score_matrix(
                features, d, group_weights, group_means, group_covs
            )
            new_assignment = scores.argmax(axis=1)
            best = None
            if compute_score:
                best = scores[np.arange(l), new_assignment]
                score = float(np.sum(weights * best))

            # Repair empty groups (possible when k seeds collapse): move the
            # worst-explained component into its own group.
            counts = np.bincount(new_assignment, minlength=occupied_count)
            if not counts.all():
                free = np.flatnonzero(counts == 0)
                if best is None:
                    best = scores[np.arange(l), new_assignment]
                order = np.argsort(best)  # worst fit first
                for j, i in zip(free, order):
                    new_assignment[int(i)] = int(j)

            if (new_assignment == compact).all():
                converged = True
                break
            assignment = new_assignment

    global _EM_ITERATIONS_TOTAL
    _EM_ITERATIONS_TOTAL += iteration

    # Bucket indices by label in one pass; ascending labels with ascending
    # member indices, exactly like the old per-label ``np.where`` scan.
    buckets: dict[int, list[int]] = {}
    for i, label in enumerate(assignment.tolist()):
        buckets.setdefault(label, []).append(i)
    groups = [buckets[label] for label in sorted(buckets)]
    model = None
    if build_model:
        group_weights, group_means, group_covs = _group_moments(
            groups, weights, means, covs
        )
        model = GaussianMixtureModel(group_weights, group_means, group_covs)
    return ReductionResult(
        groups=tuple(tuple(group) for group in groups),
        model=model,
        score=score,
        iterations=iteration,
        converged=converged,
    )
