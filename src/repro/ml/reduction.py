"""Mixture reduction: grouping an l-GM into a k-GM via Expectation Maximization.

Section 5.2 of the paper: when a node accumulates more than ``k``
collections, it must merge some of them.  The ideal grouping maximises the
likelihood of the ``l``-component mixture under the best ``k``-component
mixture, which is NP-hard, so — "following common practice" — the paper
approximates it with EM.  Here the *data points* of the EM are themselves
weighted Gaussians (the collections), so the E-step scores a candidate
group by the **expected** log-density of an inner Gaussian under the
group's moment-matched outer Gaussian (see
:func:`repro.ml.gaussian.expected_log_density`), and the M-step is the
closed-form moment match of :func:`repro.ml.gaussian.pool_moments`.

Assignments are *hard* because the generic algorithm's ``partition`` must
return a partition — a collection is merged wholly into one group, never
fractionally shared (sharing happens upstream, through weight splitting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Optional

from repro.ml.gaussian import pool_moments
from repro.ml.gmm import GaussianMixtureModel
from repro.ml.linalg import (
    cholesky_log_det_batch,
    regularize_covariance,
    symmetrize,
    triangular_inverse_batch,
)
from repro.obs.profiling import span

__all__ = ["ReductionResult", "em_iterations_total", "reduce_mixture"]

#: Process-wide count of hard-EM iterations executed by
#: :func:`reduce_mixture`.  Telemetry reads this as a monotone gauge and
#: reports per-round deltas; it is observational only and never feeds
#: back into the algorithm.
_EM_ITERATIONS_TOTAL = 0


def em_iterations_total() -> int:
    """Cumulative EM iterations run by :func:`reduce_mixture` so far."""
    return _EM_ITERATIONS_TOTAL

#: Ridge applied to group covariances when *scoring* only; the reported
#: moment-matched covariances are exact.
_SCORING_RIDGE = 1e-6

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of an l-GM -> k-GM reduction.

    ``model`` is ``None`` when the caller requested ``build_model=False``
    (the schemes' partition hot path only consumes ``groups``).
    """

    groups: tuple[tuple[int, ...], ...]
    model: Optional[GaussianMixtureModel]
    score: float
    iterations: int
    converged: bool


def _group_moments(
    groups: list[list[int]],
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Moment-match each group; returns (group_weights, group_means, group_covs)."""
    d = means.shape[1]
    group_weights = np.empty(len(groups))
    group_means = np.empty((len(groups), d))
    group_covs = np.empty((len(groups), d, d))
    for j, group in enumerate(groups):
        idx = np.asarray(group, dtype=int)
        group_weights[j] = weights[idx].sum()
        group_means[j], group_covs[j] = pool_moments(weights[idx], means[idx], covs[idx])
    return group_weights, group_means, group_covs


def _moments_from_assignment(
    compact: np.ndarray,
    k_occupied: int,
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment-sum moment match over a compact hard assignment.

    ``compact`` holds group labels in ``0..k_occupied-1`` with every label
    occupied.  One pass of ``np.bincount``/``np.add.at`` replaces the
    Python loop over groups: this is the M-step for *all* groups at once.
    """
    d = means.shape[1]
    group_weights = np.bincount(compact, weights=weights, minlength=k_occupied)
    group_means = np.zeros((k_occupied, d))
    np.add.at(group_means, compact, weights[:, None] * means)
    group_means /= group_weights[:, None]
    centered = means - group_means[compact]
    spread = covs + centered[:, :, None] * centered[:, None, :]
    group_covs = np.zeros((k_occupied, d, d))
    np.add.at(group_covs, compact, weights[:, None, None] * spread)
    group_covs /= group_weights[:, None, None]
    return group_weights, group_means, symmetrize(group_covs)


def _score_features(means: np.ndarray, covs: np.ndarray) -> np.ndarray:
    """Per-component feature rows ``[vec(C_i + mu_i mu_i^T), mu_i, 1]``.

    The expected log-density of component ``i`` under any group Gaussian
    is *linear* in these features (see :func:`_score_matrix`), so they are
    computed once per reduction and reused by every EM iteration.
    """
    l, d = means.shape
    spread = covs + means[:, :, None] * means[:, None, :]
    return np.concatenate(
        [spread.reshape(l, d * d), means, np.ones((l, 1))], axis=1
    )


def _score_matrix(
    features: np.ndarray,
    d: int,
    group_weights: np.ndarray,
    group_means: np.ndarray,
    group_covs: np.ndarray,
) -> np.ndarray:
    """Expected complete-data log-likelihood of component i under group j.

    Vectorised form of :func:`repro.ml.gaussian.expected_log_density`
    over all components and groups at once: for group covariance ``S``,
    precision ``P = S^-1`` and component ``(mu_i, C_i)``::

        log pi_j - 1/2 (d log 2pi + log|S| + tr(P C_i) + (mu_i-m_j)^T P (mu_i-m_j))

    One batched Cholesky factorisation covers every group (log-determinant
    off the factor diagonals, precisions from triangular inverses), and
    the score decomposes linearly over the per-component features
    ``[vec(C_i + mu_i mu_i^T), mu_i, 1]`` with per-group coefficients
    ``[-1/2 vec(P_j), P_j m_j, const_j]``: both ``tr(P C)`` and the
    quadratic form are Frobenius inner products against ``P_j``.  The
    whole E-step is then a single ``(l, d^2+d+1) @ (d^2+d+1, k)`` matrix
    product — no per-group ``inv``/``slogdet`` calls, no ``(l, k, d)``
    intermediates.
    """
    k = group_weights.shape[0]
    log_pi = np.log(group_weights / group_weights.sum())
    regularized = regularize_covariance(group_covs, _SCORING_RIDGE)
    lowers, log_dets = cholesky_log_det_batch(regularized, _SCORING_RIDGE)
    lower_invs = triangular_inverse_batch(lowers)
    precisions = np.matmul(np.swapaxes(lower_invs, -2, -1), lower_invs)
    scaled_means = np.einsum("jab,jb->ja", precisions, group_means)
    mean_quads = np.einsum("ja,ja->j", scaled_means, group_means)
    consts = log_pi - 0.5 * (d * _LOG_2PI + log_dets + mean_quads)
    coefficients = np.concatenate(
        [-0.5 * precisions.reshape(k, d * d), scaled_means, consts[:, None]],
        axis=1,
    )
    return features @ coefficients.T


def _maximin_seeds(weights: np.ndarray, means: np.ndarray, k: int) -> np.ndarray:
    """Deterministic seed selection: heaviest first, then farthest-point.

    The classic 2-approximation for k-centers: each subsequent seed is
    the component farthest (in mean distance) from all chosen seeds.
    Deterministic by construction — ties resolve to the lowest index.
    """
    first = int(np.argmax(weights))
    chosen = [first]
    closest_sq = np.sum((means - means[first]) ** 2, axis=1)
    for _ in range(1, k):
        candidate = int(np.argmax(closest_sq))
        if closest_sq[candidate] <= 0.0:
            break  # all remaining components coincide with a seed
        chosen.append(candidate)
        closest_sq = np.minimum(
            closest_sq, np.sum((means - means[candidate]) ** 2, axis=1)
        )
    return means[chosen]


def reduce_mixture(
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 50,
    build_model: bool = True,
) -> ReductionResult:
    """Group ``l`` weighted Gaussians into at most ``k`` groups by hard EM.

    Parameters
    ----------
    weights, means, covs:
        The input components: shapes ``(l,)``, ``(l, d)``, ``(l, d, d)``.
    k:
        Maximum number of output groups.
    rng:
        Accepted for API stability; the reduction is fully deterministic
        (maximin seeding), so the generator is not consulted.
    max_iterations:
        Hard cap on EM iterations; hard-assignment EM either cycles or
        reaches a fixed point, and the fixed point is detected exactly.
    build_model:
        When false, skip constructing the moment-matched output mixture
        (``result.model`` is ``None``).  The scheme partition hot path
        only needs ``groups``, so it opts out of the extra k moment
        matches per call.

    Returns
    -------
    ReductionResult
        ``groups`` partitions ``range(l)``; ``model`` is the
        moment-matched reduced mixture; ``score`` is the summed
        weight-scaled expected log-likelihood the assignment achieves.
    """
    weights = np.asarray(weights, dtype=float)
    means = np.atleast_2d(np.asarray(means, dtype=float))
    covs = np.asarray(covs, dtype=float)
    if covs.ndim == 2:
        covs = covs[None, :, :]
    l = weights.shape[0]
    if means.shape[0] != l or covs.shape[0] != l:
        raise ValueError("weights, means and covs must align")
    if k < 1:
        raise ValueError("k must be at least 1")

    if l <= k:
        groups = [[i] for i in range(l)]
        model = None
        if build_model:
            group_weights, group_means, group_covs = _group_moments(
                groups, weights, means, covs
            )
            model = GaussianMixtureModel(group_weights, group_means, group_covs)
        return ReductionResult(
            groups=tuple(tuple(group) for group in groups),
            model=model,
            score=0.0,
            iterations=0,
            converged=True,
        )

    # Seed group centres deterministically: the heaviest component first,
    # then greedy farthest-point (maximin) selection.  Unlike randomised
    # k-means++ this *always* covers well-separated clusters, so a node
    # can never draw an unlucky seeding that merges a distant outlier
    # cluster into the bulk — an irreversible mistake under the
    # algorithm's lossy compression (merged collections never separate).
    seeds = _maximin_seeds(weights, means, k)
    distances_sq = np.sum((means[:, None, :] - seeds[None, :, :]) ** 2, axis=2)
    assignment = np.argmin(distances_sq, axis=1)

    converged = False
    iteration = 0
    score = 0.0
    component_range = np.arange(l)
    features = _score_features(means, covs)
    with span("ml.reduce_mixture"):
        for iteration in range(1, max_iterations + 1):
            # Relabel occupied groups compactly (np.unique is sorted, so
            # the occupied ordering matches the old group-list scan) and
            # moment-match them all in one segment-sum pass.
            labels = np.unique(assignment)
            compact = np.searchsorted(labels, assignment)
            occupied_count = labels.shape[0]
            group_weights, group_means, group_covs = _moments_from_assignment(
                compact, occupied_count, weights, means, covs
            )
            scores = _score_matrix(
                features, means.shape[1], group_weights, group_means, group_covs
            )
            new_assignment = np.argmax(scores, axis=1)
            best = scores[component_range, new_assignment]
            score = float(np.sum(weights * best))

            # Repair empty groups (possible when k seeds collapse): move the
            # worst-explained component into its own group.
            used = set(new_assignment.tolist())
            free = [j for j in range(occupied_count) if j not in used]
            if free:
                order = np.argsort(best)  # worst fit first
                for j, i in zip(free, order):
                    new_assignment[int(i)] = j

            if np.array_equal(new_assignment, compact):
                converged = True
                break
            assignment = new_assignment

    global _EM_ITERATIONS_TOTAL
    _EM_ITERATIONS_TOTAL += iteration

    groups = [
        [int(i) for i in np.where(assignment == j)[0]]
        for j in range(int(assignment.max()) + 1)
    ]
    groups = [group for group in groups if group]
    model = None
    if build_model:
        group_weights, group_means, group_covs = _group_moments(
            groups, weights, means, covs
        )
        model = GaussianMixtureModel(group_weights, group_means, group_covs)
    return ReductionResult(
        groups=tuple(tuple(group) for group in groups),
        model=model,
        score=score,
        iterations=iteration,
        converged=converged,
    )
