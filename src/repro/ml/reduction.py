"""Mixture reduction: grouping an l-GM into a k-GM via Expectation Maximization.

Section 5.2 of the paper: when a node accumulates more than ``k``
collections, it must merge some of them.  The ideal grouping maximises the
likelihood of the ``l``-component mixture under the best ``k``-component
mixture, which is NP-hard, so — "following common practice" — the paper
approximates it with EM.  Here the *data points* of the EM are themselves
weighted Gaussians (the collections), so the E-step scores a candidate
group by the **expected** log-density of an inner Gaussian under the
group's moment-matched outer Gaussian (see
:func:`repro.ml.gaussian.expected_log_density`), and the M-step is the
closed-form moment match of :func:`repro.ml.gaussian.pool_moments`.

Assignments are *hard* because the generic algorithm's ``partition`` must
return a partition — a collection is merged wholly into one group, never
fractionally shared (sharing happens upstream, through weight splitting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.gaussian import pool_moments
from repro.ml.gmm import GaussianMixtureModel
from repro.ml.linalg import regularize_covariance
from repro.obs.profiling import span

__all__ = ["ReductionResult", "reduce_mixture"]

#: Ridge applied to group covariances when *scoring* only; the reported
#: moment-matched covariances are exact.
_SCORING_RIDGE = 1e-6


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of an l-GM -> k-GM reduction."""

    groups: tuple[tuple[int, ...], ...]
    model: GaussianMixtureModel
    score: float
    iterations: int
    converged: bool


def _group_moments(
    groups: list[list[int]],
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Moment-match each group; returns (group_weights, group_means, group_covs)."""
    d = means.shape[1]
    group_weights = np.empty(len(groups))
    group_means = np.empty((len(groups), d))
    group_covs = np.empty((len(groups), d, d))
    for j, group in enumerate(groups):
        idx = np.asarray(group, dtype=int)
        group_weights[j] = weights[idx].sum()
        group_means[j], group_covs[j] = pool_moments(weights[idx], means[idx], covs[idx])
    return group_weights, group_means, group_covs


def _score_matrix(
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
    group_weights: np.ndarray,
    group_means: np.ndarray,
    group_covs: np.ndarray,
) -> np.ndarray:
    """Expected complete-data log-likelihood of component i under group j.

    Vectorised form of :func:`repro.ml.gaussian.expected_log_density`
    over all components per group: for group covariance ``S`` and
    component ``(mu_i, C_i)``::

        log pi_j - 1/2 (d log 2pi + log|S| + tr(S^-1 C_i) + (mu_i-m_j)^T S^-1 (mu_i-m_j))
    """
    l, d = means.shape
    k = group_means.shape[0]
    log_pi = np.log(group_weights / group_weights.sum())
    scores = np.empty((l, k))
    log_2pi = np.log(2.0 * np.pi)
    for j in range(k):
        cov = regularize_covariance(group_covs[j], _SCORING_RIDGE)
        sign, log_det = np.linalg.slogdet(cov)
        if sign <= 0:  # pragma: no cover - regularisation prevents this
            raise np.linalg.LinAlgError("group covariance not positive definite")
        inverse = np.linalg.inv(cov)
        diffs = means - group_means[j]
        quad = np.einsum("ia,ab,ib->i", diffs, inverse, diffs)
        traces = np.einsum("ab,iba->i", inverse, covs)
        scores[:, j] = log_pi[j] - 0.5 * (d * log_2pi + log_det + traces + quad)
    return scores


def _maximin_seeds(weights: np.ndarray, means: np.ndarray, k: int) -> np.ndarray:
    """Deterministic seed selection: heaviest first, then farthest-point.

    The classic 2-approximation for k-centers: each subsequent seed is
    the component farthest (in mean distance) from all chosen seeds.
    Deterministic by construction — ties resolve to the lowest index.
    """
    first = int(np.argmax(weights))
    chosen = [first]
    closest_sq = np.sum((means - means[first]) ** 2, axis=1)
    for _ in range(1, k):
        candidate = int(np.argmax(closest_sq))
        if closest_sq[candidate] <= 0.0:
            break  # all remaining components coincide with a seed
        chosen.append(candidate)
        closest_sq = np.minimum(
            closest_sq, np.sum((means - means[candidate]) ** 2, axis=1)
        )
    return means[chosen]


def reduce_mixture(
    weights: np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 50,
) -> ReductionResult:
    """Group ``l`` weighted Gaussians into at most ``k`` groups by hard EM.

    Parameters
    ----------
    weights, means, covs:
        The input components: shapes ``(l,)``, ``(l, d)``, ``(l, d, d)``.
    k:
        Maximum number of output groups.
    rng:
        Accepted for API stability; the reduction is fully deterministic
        (maximin seeding), so the generator is not consulted.
    max_iterations:
        Hard cap on EM iterations; hard-assignment EM either cycles or
        reaches a fixed point, and the fixed point is detected exactly.

    Returns
    -------
    ReductionResult
        ``groups`` partitions ``range(l)``; ``model`` is the
        moment-matched reduced mixture; ``score`` is the summed
        weight-scaled expected log-likelihood the assignment achieves.
    """
    weights = np.asarray(weights, dtype=float)
    means = np.atleast_2d(np.asarray(means, dtype=float))
    covs = np.asarray(covs, dtype=float)
    if covs.ndim == 2:
        covs = covs[None, :, :]
    l = weights.shape[0]
    if means.shape[0] != l or covs.shape[0] != l:
        raise ValueError("weights, means and covs must align")
    if k < 1:
        raise ValueError("k must be at least 1")

    if l <= k:
        groups = [[i] for i in range(l)]
        group_weights, group_means, group_covs = _group_moments(groups, weights, means, covs)
        model = GaussianMixtureModel(group_weights, group_means, group_covs)
        return ReductionResult(
            groups=tuple(tuple(group) for group in groups),
            model=model,
            score=0.0,
            iterations=0,
            converged=True,
        )

    # Seed group centres deterministically: the heaviest component first,
    # then greedy farthest-point (maximin) selection.  Unlike randomised
    # k-means++ this *always* covers well-separated clusters, so a node
    # can never draw an unlucky seeding that merges a distant outlier
    # cluster into the bulk — an irreversible mistake under the
    # algorithm's lossy compression (merged collections never separate).
    seeds = _maximin_seeds(weights, means, k)
    distances_sq = np.sum((means[:, None, :] - seeds[None, :, :]) ** 2, axis=2)
    assignment = np.argmin(distances_sq, axis=1)

    converged = False
    iteration = 0
    score = 0.0
    with span("ml.reduce_mixture"):
        for iteration in range(1, max_iterations + 1):
            groups = [[int(i) for i in np.where(assignment == j)[0]] for j in range(k)]
            occupied = [group for group in groups if group]
            group_weights, group_means, group_covs = _group_moments(
                occupied, weights, means, covs
            )
            scores = _score_matrix(
                weights, means, covs, group_weights, group_means, group_covs
            )
            new_assignment = np.argmax(scores, axis=1)
            best = scores[np.arange(l), new_assignment]
            score = float(np.sum(weights * best))

            # Repair empty groups (possible when k seeds collapse): move the
            # worst-explained component into its own group.
            used = set(new_assignment.tolist())
            free = [j for j in range(len(occupied)) if j not in used]
            if free:
                order = np.argsort(best)  # worst fit first
                for j, i in zip(free, order):
                    new_assignment[int(i)] = j

            if np.array_equal(new_assignment, assignment):
                converged = True
                break
            assignment = new_assignment

    groups = [
        [int(i) for i in np.where(assignment == j)[0]]
        for j in range(int(assignment.max()) + 1)
    ]
    groups = [group for group in groups if group]
    group_weights, group_means, group_covs = _group_moments(groups, weights, means, covs)
    model = GaussianMixtureModel(group_weights, group_means, group_covs)
    return ReductionResult(
        groups=tuple(tuple(group) for group in groups),
        model=model,
        score=score,
        iterations=iteration,
        converged=converged,
    )
