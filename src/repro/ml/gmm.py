"""Gaussian Mixture Models: density, responsibilities, sampling.

A Gaussian Mixture (GM) is a weighted set of normal distributions — the
summary representation at the heart of the paper's Section 5 algorithm.
This class is shared by the data generators (sampling synthetic sensor
readings), the centralised EM baseline (the fitted model), and the
analysis code (scoring how well a distributed run recovered the source
mixture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import logsumexp

from repro.ml import gaussian as mvn

__all__ = ["GaussianMixtureModel"]


@dataclass
class GaussianMixtureModel:
    """An immutable mixture of ``k`` weighted multivariate normals.

    Attributes
    ----------
    weights:
        Mixing proportions, shape ``(k,)``; normalised at construction.
    means:
        Component means, shape ``(k, d)``.
    covs:
        Component covariances, shape ``(k, d, d)``.
    """

    weights: np.ndarray
    means: np.ndarray
    covs: np.ndarray

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.means = np.atleast_2d(np.asarray(self.means, dtype=float))
        self.covs = np.asarray(self.covs, dtype=float)
        if self.covs.ndim == 2:
            self.covs = self.covs[None, :, :]
        k = self.weights.shape[0]
        if self.means.shape[0] != k or self.covs.shape[0] != k:
            raise ValueError(
                f"component count mismatch: weights {k}, means {self.means.shape[0]}, "
                f"covs {self.covs.shape[0]}"
            )
        if np.any(self.weights < 0) or self.weights.sum() <= 0:
            raise ValueError("mixture weights must be non-negative with positive sum")
        self.weights = self.weights / self.weights.sum()

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        return int(self.weights.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.means.shape[1])

    # ------------------------------------------------------------------
    # Densities
    # ------------------------------------------------------------------
    def component_log_densities(self, points: np.ndarray) -> np.ndarray:
        """Matrix of per-component log densities, shape ``(n_points, k)``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        columns = [
            mvn.log_density(points, self.means[j], self.covs[j])
            for j in range(self.n_components)
        ]
        return np.stack(columns, axis=1)

    def log_density(self, points: np.ndarray) -> np.ndarray:
        """Mixture log-density at each point."""
        log_components = self.component_log_densities(points)
        return logsumexp(log_components + np.log(self.weights), axis=1)

    def density(self, points: np.ndarray) -> np.ndarray:
        return np.exp(self.log_density(points))

    def log_likelihood(self, points: np.ndarray, weights: np.ndarray | None = None) -> float:
        """Total (optionally weighted) log-likelihood of a data set."""
        log_density = self.log_density(points)
        if weights is None:
            return float(np.sum(log_density))
        return float(np.sum(np.asarray(weights, dtype=float) * log_density))

    def responsibilities(self, points: np.ndarray) -> np.ndarray:
        """Posterior component memberships, shape ``(n_points, k)``; rows sum to 1."""
        log_components = self.component_log_densities(points) + np.log(self.weights)
        log_norm = logsumexp(log_components, axis=1, keepdims=True)
        return np.exp(log_components - log_norm)

    def classify(self, points: np.ndarray) -> np.ndarray:
        """Hard component assignment (argmax responsibility) per point."""
        return np.argmax(self.responsibilities(points), axis=1)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``size`` points; returns ``(points, component_labels)``."""
        labels = rng.choice(self.n_components, size=size, p=self.weights)
        points = np.empty((size, self.dimension))
        for j in range(self.n_components):
            mask = labels == j
            count = int(mask.sum())
            if count:
                points[mask] = mvn.sample(rng, self.means[j], self.covs[j], count)
        return points, labels

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_components(
        cls,
        components: Sequence[tuple[float, np.ndarray, np.ndarray]],
    ) -> "GaussianMixtureModel":
        """Build from an iterable of ``(weight, mean, cov)`` triples."""
        weights, means, covs = zip(*components)
        return cls(np.array(weights), np.array(means), np.array(covs))

    def sorted_by_weight(self) -> "GaussianMixtureModel":
        """Components reordered heaviest-first (canonical form for reports)."""
        order = np.argsort(-self.weights)
        return GaussianMixtureModel(self.weights[order], self.means[order], self.covs[order])
