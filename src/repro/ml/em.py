"""Centralised weighted Expectation Maximization for Gaussian mixtures.

This is the classical Dempster-Laird-Rubin EM the paper cites [5], fitted
over raw (weighted) points.  In the reproduction it serves as the
*centralised comparator*: the quality bar a node's distributed GM estimate
is measured against (benchmark ``test_ablation_centralized``), and as a
reference implementation the mixture-reduction EM is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.ml.gmm import GaussianMixtureModel
from repro.ml.kmeans import weighted_kmeans
from repro.ml.linalg import regularize_covariance, symmetrize
from repro.obs.context import current_sink
from repro.obs.events import Event
from repro.obs.profiling import span

__all__ = ["EMResult", "fit_gmm_em"]

#: Covariance ridge keeping M-step covariances positive definite.
_COV_RIDGE = 1e-8


@dataclass(frozen=True)
class EMResult:
    """Outcome of a centralised EM fit."""

    model: GaussianMixtureModel
    log_likelihood: float
    log_likelihood_trace: tuple[float, ...]
    iterations: int
    converged: bool


def _initial_model(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray,
) -> GaussianMixtureModel:
    """Seed EM from a weighted k-means clustering."""
    clustering = weighted_kmeans(points, k, rng, weights=weights)
    d = points.shape[1]
    mix_weights = np.empty(k)
    covs = np.empty((k, d, d))
    overall_cov = np.cov(points.T, aweights=weights) if points.shape[0] > 1 else np.eye(d)
    overall_cov = regularize_covariance(np.atleast_2d(overall_cov))
    for j in range(k):
        mask = clustering.labels == j
        mass = weights[mask].sum()
        mix_weights[j] = max(mass, 1e-12)
        if mask.sum() > 1 and mass > 0:
            centered = points[mask] - clustering.centroids[j]
            covs[j] = regularize_covariance(
                (weights[mask, None] * centered).T @ centered / mass, _COV_RIDGE
            )
        else:
            covs[j] = overall_cov
    return GaussianMixtureModel(mix_weights, clustering.centroids, covs)


def fit_gmm_em(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-7,
    initial_model: GaussianMixtureModel | None = None,
) -> EMResult:
    """Fit a ``k``-component Gaussian mixture by weighted EM.

    The per-iteration weighted log-likelihood is monotonically
    non-decreasing (a property test asserts this); convergence is declared
    when the improvement per unit weight drops below ``tolerance``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, d = points.shape
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=float)
    if weights.shape[0] != n:
        raise ValueError("weights must align with points")
    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    if k > n:
        raise ValueError(f"cannot fit {k} components to {n} points")

    model = initial_model if initial_model is not None else _initial_model(points, k, rng, weights)
    trace: list[float] = []
    converged = False
    iteration = 0
    sink = current_sink()
    with span("em.fit"):
        for iteration in range(1, max_iterations + 1):
            # E-step: weighted responsibilities.
            log_components = model.component_log_densities(points) + np.log(model.weights)
            log_norm = logsumexp(log_components, axis=1)
            responsibilities = np.exp(log_components - log_norm[:, None])
            log_likelihood = float(np.sum(weights * log_norm))
            trace.append(log_likelihood)
            if sink is not None:
                sink.emit(
                    Event(
                        kind="em_step",
                        items=iteration,
                        extra={"log_likelihood": log_likelihood},
                    )
                )

            # M-step: weighted moment updates.
            effective = responsibilities * weights[:, None]
            masses = effective.sum(axis=0)
            masses = np.maximum(masses, 1e-300)
            new_weights = masses / total_weight
            new_means = (effective.T @ points) / masses[:, None]
            new_covs = np.empty((k, d, d))
            for j in range(k):
                centered = points - new_means[j]
                cov = (effective[:, j, None] * centered).T @ centered / masses[j]
                new_covs[j] = regularize_covariance(symmetrize(cov), _COV_RIDGE)
            model = GaussianMixtureModel(new_weights, new_means, new_covs)

            if len(trace) >= 2 and (trace[-1] - trace[-2]) / total_weight < tolerance:
                converged = True
                break

        final_log_likelihood = model.log_likelihood(points, weights)
    trace.append(final_log_likelihood)
    return EMResult(
        model=model,
        log_likelihood=final_log_likelihood,
        log_likelihood_trace=tuple(trace),
        iterations=iteration,
        converged=converged,
    )
