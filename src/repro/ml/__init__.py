"""Machine-learning substrate: Gaussians, mixtures, k-means, EM, reduction.

Everything in this package is centralised, deterministic-given-a-seed
numerical code with no knowledge of nodes or networks.  The distributed
layers (:mod:`repro.schemes`, :mod:`repro.protocols`) compose these
primitives; the benchmarks also use them directly as the centralised
comparators the paper measures against.
"""

from repro.ml.em import EMResult, fit_gmm_em
from repro.ml.gaussian import (
    density,
    expected_log_density,
    kl_divergence,
    log_density,
    pool_moments,
    sample,
)
from repro.ml.gmm import GaussianMixtureModel
from repro.ml.kmeans import KMeansResult, kmeans_plus_plus_init, weighted_kmeans
from repro.ml.reduction import ReductionResult, reduce_mixture

__all__ = [
    "EMResult",
    "GaussianMixtureModel",
    "KMeansResult",
    "ReductionResult",
    "density",
    "expected_log_density",
    "fit_gmm_em",
    "kl_divergence",
    "kmeans_plus_plus_init",
    "log_density",
    "pool_moments",
    "reduce_mixture",
    "sample",
    "weighted_kmeans",
]
