"""Numerically careful covariance-matrix utilities.

The GM instantiation constantly manipulates covariance matrices that sit at
the edge of validity: singleton collections have *exactly zero* covariance
(Section 5.1's ``valToSummary`` returns a zero matrix), and merged
collections of nearly collinear values are close to singular.  Every
routine here therefore works in terms of symmetrised matrices and uses a
relative ridge when a factorisation is required.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

__all__ = [
    "symmetrize",
    "regularize_covariance",
    "cholesky_with_ridge",
    "log_det_and_solve",
    "mahalanobis_squared",
]

#: Relative ridge applied when a covariance must be inverted/factorised.
DEFAULT_RIDGE = 1e-9


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Average a matrix with its transpose, removing float asymmetry."""
    matrix = np.asarray(matrix, dtype=float)
    return (matrix + matrix.T) / 2.0


def regularize_covariance(cov: np.ndarray, ridge: float = DEFAULT_RIDGE) -> np.ndarray:
    """Return a strictly positive-definite version of ``cov``.

    Adds a ridge proportional to the average variance (or an absolute
    floor for the all-zero matrix), so zero-covariance singletons become
    tiny spheres rather than degenerate points.
    """
    cov = symmetrize(cov)
    d = cov.shape[0]
    scale = float(np.trace(cov)) / d
    floor = max(scale * ridge, ridge)
    return cov + floor * np.eye(d)


def cholesky_with_ridge(cov: np.ndarray, ridge: float = DEFAULT_RIDGE) -> np.ndarray:
    """Lower Cholesky factor, escalating the ridge until factorisation succeeds."""
    cov = symmetrize(cov)
    d = cov.shape[0]
    scale = max(float(np.trace(cov)) / d, 1.0)
    attempt = max(ridge * scale, ridge)
    for _ in range(12):
        try:
            return sla.cholesky(cov + attempt * np.eye(d), lower=True)
        except sla.LinAlgError:
            attempt *= 10.0
    raise sla.LinAlgError("covariance could not be regularised to positive definite")


def log_det_and_solve(cov: np.ndarray, rhs: np.ndarray, ridge: float = DEFAULT_RIDGE) -> tuple[float, np.ndarray]:
    """Return ``(log det cov, cov^{-1} rhs)`` through one Cholesky factorisation."""
    lower = cholesky_with_ridge(cov, ridge)
    log_det = 2.0 * float(np.sum(np.log(np.diag(lower))))
    solution = sla.cho_solve((lower, True), rhs)
    return log_det, solution


def mahalanobis_squared(
    points: np.ndarray,
    mean: np.ndarray,
    cov: np.ndarray,
    ridge: float = DEFAULT_RIDGE,
) -> np.ndarray:
    """Squared Mahalanobis distance of each row of ``points`` from ``mean``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    centered = points - np.asarray(mean, dtype=float)
    lower = cholesky_with_ridge(cov, ridge)
    solved = sla.solve_triangular(lower, centered.T, lower=True)
    return np.sum(solved**2, axis=0)
