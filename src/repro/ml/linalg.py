"""Numerically careful covariance-matrix utilities.

The GM instantiation constantly manipulates covariance matrices that sit at
the edge of validity: singleton collections have *exactly zero* covariance
(Section 5.1's ``valToSummary`` returns a zero matrix), and merged
collections of nearly collinear values are close to singular.  Every
routine here therefore works in terms of symmetrised matrices and uses a
relative ridge when a factorisation is required.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

__all__ = [
    "symmetrize",
    "regularize_covariance",
    "cholesky_with_ridge",
    "cholesky_log_det_batch",
    "triangular_inverse_batch",
    "log_det_and_solve",
    "mahalanobis_squared",
]

#: Relative ridge applied when a covariance must be inverted/factorised.
DEFAULT_RIDGE = 1e-9


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Average a matrix with its transpose, removing float asymmetry.

    Accepts a single ``(d, d)`` matrix or a stack ``(..., d, d)``; the
    transpose is taken over the trailing two axes either way.
    """
    matrix = np.asarray(matrix, dtype=float)
    return (matrix + np.swapaxes(matrix, -2, -1)) / 2.0


def regularize_covariance(cov: np.ndarray, ridge: float = DEFAULT_RIDGE) -> np.ndarray:
    """Return a strictly positive-definite version of ``cov``.

    Adds a ridge proportional to the average variance (or an absolute
    floor for the all-zero matrix), so zero-covariance singletons become
    tiny spheres rather than degenerate points.  Batched: a stack
    ``(..., d, d)`` gets an independently scaled ridge per matrix.
    """
    cov = symmetrize(cov)
    d = cov.shape[-1]
    scale = np.trace(cov, axis1=-2, axis2=-1) / d
    floor = np.maximum(scale * ridge, ridge)
    return cov + floor[..., None, None] * np.eye(d)


def cholesky_with_ridge(cov: np.ndarray, ridge: float = DEFAULT_RIDGE) -> np.ndarray:
    """Lower Cholesky factor, escalating the ridge until factorisation succeeds."""
    cov = symmetrize(cov)
    d = cov.shape[0]
    scale = max(float(np.trace(cov)) / d, 1.0)
    attempt = max(ridge * scale, ridge)
    for _ in range(12):
        try:
            return sla.cholesky(cov + attempt * np.eye(d), lower=True)
        except sla.LinAlgError:
            attempt *= 10.0
    raise sla.LinAlgError("covariance could not be regularised to positive definite")


def cholesky_log_det_batch(
    covs: np.ndarray, ridge: float = DEFAULT_RIDGE
) -> tuple[np.ndarray, np.ndarray]:
    """Lower Cholesky factors and log-determinants of a covariance stack.

    ``covs`` has shape ``(k, d, d)`` and must already be regularised
    (see :func:`regularize_covariance`); the whole stack is factorised in
    one LAPACK call.  If any matrix still fails to factorise, the batch
    falls back to per-matrix :func:`cholesky_with_ridge` escalation, so
    callers get the batched speed without losing the robustness of the
    scalar path.

    Returns ``(lowers, log_dets)`` with shapes ``(k, d, d)`` and ``(k,)``;
    each log-determinant is read off the factor's diagonal.
    """
    covs = np.asarray(covs, dtype=float)
    try:
        lowers = np.linalg.cholesky(covs)
    except np.linalg.LinAlgError:
        lowers = np.stack([cholesky_with_ridge(cov, ridge) for cov in covs])
    log_dets = 2.0 * np.sum(np.log(np.diagonal(lowers, axis1=-2, axis2=-1)), axis=-1)
    return lowers, log_dets


def triangular_inverse_batch(lowers: np.ndarray) -> np.ndarray:
    """Explicit inverses of a stack ``(k, d, d)`` of lower-triangular factors.

    The factors in the mixture-reduction hot path are tiny (``d`` is the
    sensor-value dimension), so one batched solve against the identity is
    cheaper than ``k`` Python-level ``solve_triangular`` calls.
    """
    lowers = np.asarray(lowers, dtype=float)
    d = lowers.shape[-1]
    return np.linalg.solve(lowers, np.broadcast_to(np.eye(d), lowers.shape).copy())


def log_det_and_solve(cov: np.ndarray, rhs: np.ndarray, ridge: float = DEFAULT_RIDGE) -> tuple[float, np.ndarray]:
    """Return ``(log det cov, cov^{-1} rhs)`` through one Cholesky factorisation."""
    lower = cholesky_with_ridge(cov, ridge)
    log_det = 2.0 * float(np.sum(np.log(np.diag(lower))))
    solution = sla.cho_solve((lower, True), rhs)
    return log_det, solution


def mahalanobis_squared(
    points: np.ndarray,
    mean: np.ndarray,
    cov: np.ndarray,
    ridge: float = DEFAULT_RIDGE,
) -> np.ndarray:
    """Squared Mahalanobis distance of each row of ``points`` from ``mean``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    centered = points - np.asarray(mean, dtype=float)
    lower = cholesky_with_ridge(cov, ridge)
    solved = sla.solve_triangular(lower, centered.T, lower=True)
    return np.sum(solved**2, axis=0)
