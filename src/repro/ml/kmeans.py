"""Weighted k-means (Lloyd's algorithm) with k-means++ seeding.

Two roles in this repository:

1. the *centralised comparator* for the distributed centroids
   instantiation (Algorithm 2 is explicitly "like the famous k-means"), and
2. the initialiser for centralised EM and for the mixture-reduction EM
   when no better seeds are available.

Fully weighted: every point carries a non-negative weight, because the
distributed algorithm's collections are weighted and the comparators must
consume the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "weighted_kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a weighted k-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def kmeans_plus_plus_init(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2.

    Weighted variant: both the first draw and the D^2 draws are scaled by
    point weights, so heavy points are proportionally likelier seeds.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    if k > n:
        raise ValueError(f"cannot seed {k} centroids from {n} points")
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=float)
    probabilities = weights / weights.sum()
    centroids = np.empty((k, points.shape[1]))
    first = rng.choice(n, p=probabilities)
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for j in range(1, k):
        scores = weights * closest_sq
        total = scores.sum()
        if total <= 0:
            # All remaining points coincide with existing centroids; any
            # choice is equivalent.
            index = rng.choice(n, p=probabilities)
        else:
            index = rng.choice(n, p=scores / total)
        centroids[j] = points[index]
        closest_sq = np.minimum(closest_sq, np.sum((points - centroids[j]) ** 2, axis=1))
    return centroids


def weighted_kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """Lloyd's algorithm on weighted points.

    Empty clusters are reseeded at the point farthest (weighted) from its
    centroid, the standard repair that keeps exactly ``k`` clusters alive.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=float)
    if weights.shape[0] != n:
        raise ValueError("weights must align with points")
    if initial_centroids is None:
        centroids = kmeans_plus_plus_init(points, k, rng, weights)
    else:
        centroids = np.array(initial_centroids, dtype=float)
        if centroids.shape[0] != k:
            raise ValueError("initial_centroids must have k rows")

    labels = np.zeros(n, dtype=int)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances_sq = np.sum(
            (points[:, None, :] - centroids[None, :, :]) ** 2, axis=2
        )
        labels = np.argmin(distances_sq, axis=1)
        new_centroids = np.empty_like(centroids)
        for j in range(k):
            mask = labels == j
            mass = weights[mask].sum()
            if mass > 0:
                new_centroids[j] = (
                    weights[mask, None] * points[mask]
                ).sum(axis=0) / mass
            else:
                farthest = int(np.argmax(weights * distances_sq[np.arange(n), labels]))
                new_centroids[j] = points[farthest]
        shift = float(np.max(np.linalg.norm(new_centroids - centroids, axis=1)))
        centroids = new_centroids
        if shift <= tolerance:
            converged = True
            break

    distances_sq = np.sum((points[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
    labels = np.argmin(distances_sq, axis=1)
    inertia = float(np.sum(weights * distances_sq[np.arange(n), labels]))
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=inertia,
        iterations=iteration,
        converged=converged,
    )
