"""Multivariate normal distributions: densities, sampling, moments.

Implemented from scratch on top of :mod:`repro.ml.linalg` so the library
has no dependency beyond numpy/scipy linear algebra.  All density routines
are vectorised over points and tolerant of (regularised) zero covariances,
since singleton collections in the GM scheme carry exactly-zero covariance
matrices.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import linalg as sla

from repro.ml.linalg import cholesky_with_ridge, symmetrize

__all__ = [
    "log_density",
    "density",
    "sample",
    "kl_divergence",
    "pool_moments",
    "expected_log_density",
]

_LOG_2PI = math.log(2.0 * math.pi)


def log_density(points: np.ndarray, mean: np.ndarray, cov: np.ndarray) -> np.ndarray:
    """Log-density of a multivariate normal at each row of ``points``.

    Accepts a single point (1-D) or a matrix of points (2-D); always
    returns a 1-D array of log-densities.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    mean = np.asarray(mean, dtype=float)
    d = mean.shape[0]
    lower = cholesky_with_ridge(cov)
    log_det = 2.0 * float(np.sum(np.log(np.diag(lower))))
    centered = points - mean
    solved = sla.solve_triangular(lower, centered.T, lower=True)
    mahal = np.sum(solved**2, axis=0)
    return -0.5 * (d * _LOG_2PI + log_det + mahal)


def density(points: np.ndarray, mean: np.ndarray, cov: np.ndarray) -> np.ndarray:
    """Density of a multivariate normal at each row of ``points``."""
    return np.exp(log_density(points, mean, cov))


def sample(rng: np.random.Generator, mean: np.ndarray, cov: np.ndarray, size: int) -> np.ndarray:
    """Draw ``size`` samples from N(mean, cov) via Cholesky transform."""
    mean = np.asarray(mean, dtype=float)
    d = mean.shape[0]
    lower = cholesky_with_ridge(cov)
    standard = rng.standard_normal((size, d))
    return mean + standard @ lower.T


def kl_divergence(
    mean0: np.ndarray,
    cov0: np.ndarray,
    mean1: np.ndarray,
    cov1: np.ndarray,
) -> float:
    """KL(N0 || N1) between two multivariate normals (closed form)."""
    mean0 = np.asarray(mean0, dtype=float)
    mean1 = np.asarray(mean1, dtype=float)
    d = mean0.shape[0]
    lower1 = cholesky_with_ridge(cov1)
    lower0 = cholesky_with_ridge(cov0)
    log_det1 = 2.0 * float(np.sum(np.log(np.diag(lower1))))
    log_det0 = 2.0 * float(np.sum(np.log(np.diag(lower0))))
    solved_cov = sla.cho_solve((lower1, True), symmetrize(np.asarray(cov0, dtype=float)))
    trace_term = float(np.trace(solved_cov))
    diff = mean1 - mean0
    solved_diff = sla.cho_solve((lower1, True), diff)
    quad = float(diff @ solved_diff)
    return 0.5 * (trace_term + quad - d + log_det1 - log_det0)


def expected_log_density(
    mean_inner: np.ndarray,
    cov_inner: np.ndarray,
    mean_outer: np.ndarray,
    cov_outer: np.ndarray,
) -> float:
    """E_{x ~ N(mean_inner, cov_inner)}[ log N(x; mean_outer, cov_outer) ].

    The quantity the mixture-reduction E-step scores candidate groupings
    with: how well an outer Gaussian explains samples drawn from an inner
    one.  Closed form::

        -1/2 (d log 2pi + log|S| + tr(S^-1 C) + (m - u)^T S^-1 (m - u))

    with ``S = cov_outer``, ``C = cov_inner``, ``u = mean_inner`` and
    ``m = mean_outer``.
    """
    mean_inner = np.asarray(mean_inner, dtype=float)
    mean_outer = np.asarray(mean_outer, dtype=float)
    d = mean_inner.shape[0]
    lower = cholesky_with_ridge(cov_outer)
    log_det = 2.0 * float(np.sum(np.log(np.diag(lower))))
    solved_cov = sla.cho_solve((lower, True), symmetrize(np.asarray(cov_inner, dtype=float)))
    trace_term = float(np.trace(solved_cov))
    diff = mean_inner - mean_outer
    solved_diff = sla.cho_solve((lower, True), diff)
    quad = float(diff @ solved_diff)
    return -0.5 * (d * _LOG_2PI + log_det + trace_term + quad)


def pool_moments(
    weights: Sequence[float] | np.ndarray,
    means: np.ndarray,
    covs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Moment-match a weighted set of Gaussians into one Gaussian.

    Returns the mean and covariance of the mixture as a whole::

        mu    = sum_i w_i mu_i / W
        sigma = sum_i w_i (Sigma_i + (mu_i - mu)(mu_i - mu)^T) / W

    This is exactly the GM scheme's ``mergeSet`` (Section 5.1): merging
    collections and summarising equals summarising and merging, i.e. the
    result matches the moments of the pooled underlying weighted values —
    which is what makes requirement R4 hold.
    """
    weights = np.asarray(weights, dtype=float)
    means = np.atleast_2d(np.asarray(means, dtype=float))
    covs = np.asarray(covs, dtype=float)
    if covs.ndim == 2:
        covs = covs[None, :, :]
    if weights.ndim != 1 or weights.shape[0] != means.shape[0]:
        raise ValueError("weights and means must align")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with positive total")
    if (means == means[0]).all() and (covs == covs[0]).all():
        # Pooling byte-identical components is the identity.  Computing it
        # exactly (instead of through the weighted sums below, which pick
        # up float dust) keeps converged gossip states byte-stable, which
        # the content-addressed merge cache depends on.
        return means[0].copy(), symmetrize(covs[0])
    total = weights.sum()
    mean = (weights[:, None] * means).sum(axis=0) / total
    centered = means - mean
    scatter = np.einsum("i,ij,ik->jk", weights, centered, centered)
    within = np.einsum("i,ijk->jk", weights, covs)
    cov = symmetrize((within + scatter) / total)
    return mean, cov
