"""Experiment reproductions: one module per figure, plus ablations.

The paper's evaluation has no numbered tables; its results are Figures
1-4.  Each ``fig*.py`` module regenerates one figure's underlying data and
returns it as a plain dataclass; the benchmark suite prints and checks the
series, and the test suite runs the same code at the ``fast`` scale.
"""

from repro.experiments.ablations import (
    AblationRow,
    run_centralized_gap,
    run_gossip_variant_ablation,
    run_k_ablation,
    run_quantum_ablation,
    run_scheme_ablation,
    run_topology_ablation,
    weighted_assignment_accuracy,
)
from repro.experiments.common import BENCH, FAST, PAPER, Scale, preset, run_until_convergence
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, Fig3Row, run_fig3, run_fig3_row
from repro.experiments.fig4 import CRASH_PROBABILITY, Fig4Result, run_fig4
from repro.experiments.partitions import PartitionResult, run_partition_heal
from repro.experiments.robustness import (
    run_crash_rate_sweep,
    run_k_mismatch,
    run_outlier_fraction_sweep,
)
from repro.experiments.scalability import (
    measured_payload_bytes,
    run_async_ablation,
    run_message_size_ablation,
    run_scalability,
)

__all__ = [
    "AblationRow",
    "BENCH",
    "CRASH_PROBABILITY",
    "FAST",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig3Row",
    "Fig4Result",
    "PAPER",
    "PartitionResult",
    "Scale",
    "preset",
    "measured_payload_bytes",
    "run_async_ablation",
    "run_centralized_gap",
    "run_crash_rate_sweep",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig3_row",
    "run_fig4",
    "run_gossip_variant_ablation",
    "run_k_ablation",
    "run_k_mismatch",
    "run_message_size_ablation",
    "run_outlier_fraction_sweep",
    "run_partition_heal",
    "run_quantum_ablation",
    "run_scalability",
    "run_scheme_ablation",
    "run_topology_ablation",
    "run_until_convergence",
    "weighted_assignment_accuracy",
]
