"""Figure 4 — crash robustness and convergence speed.

The Figure 3 workload fixed at delta = 10, run for a fixed number of
rounds while recording the average node error of the mean *every round*,
in four configurations: {robust GM, regular push-sum} x {no crashes,
5% per-round Bernoulli crashes}.

Expected shape (the paper's Figure 4): the robust protocol converges to a
clearly lower error than regular aggregation (which absorbs the outliers);
crashes barely change either curve; and both protocols converge at
equivalent speed — within a few tens of rounds on the fully connected
network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.accuracy import average_error
from repro.analysis.outliers import robust_mean
from repro.data.generators import OutlierScenario, outlier_scenario
from repro.experiments.common import Scale, PAPER, run_experiment_sweep
from repro.network.failures import BernoulliCrashes, NoFailures
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.gm import GaussianMixtureScheme
from repro.sweep import SweepSpec

__all__ = ["Fig4Result", "run_fig4", "fig4_cell", "CRASH_PROBABILITY"]

#: The paper's per-round crash probability.
CRASH_PROBABILITY = 0.05


@dataclass(frozen=True)
class Fig4Result:
    """Per-round error traces for the four configurations."""

    rounds: tuple[int, ...]
    robust_no_crashes: tuple[float, ...]
    regular_no_crashes: tuple[float, ...]
    robust_with_crashes: tuple[float, ...]
    regular_with_crashes: tuple[float, ...]
    survivors_with_crashes: tuple[int, ...]
    delta: float
    n_nodes: int

    def final_errors(self) -> dict[str, float]:
        return {
            "robust_no_crashes": self.robust_no_crashes[-1],
            "regular_no_crashes": self.regular_no_crashes[-1],
            "robust_with_crashes": self.robust_with_crashes[-1],
            "regular_with_crashes": self.regular_with_crashes[-1],
        }


def _robust_trace(
    scenario: OutlierScenario,
    rounds: int,
    seed: int,
    crash_probability: float,
    engine: str = "rounds",
) -> tuple[list[float], list[int]]:
    """Per-round average robust-mean error of the GM protocol."""
    failure_model = (
        BernoulliCrashes(crash_probability) if crash_probability > 0 else NoFailures()
    )
    engine, nodes = build_classification_network(
        scenario.values,
        GaussianMixtureScheme(seed=seed),
        k=2,
        graph=complete(scenario.n),
        seed=seed,
        failure_model=failure_model,
        engine=engine,
    )
    errors: list[float] = []
    survivors: list[int] = []

    def record(current_engine) -> None:
        live = [nodes[node_id] for node_id in current_engine.live_nodes]
        errors.append(
            average_error(
                (robust_mean(node.classification) for node in live),
                scenario.true_mean,
            )
        )
        survivors.append(len(live))

    engine.run(rounds, per_round=record)
    return errors, survivors


def _regular_trace(
    scenario: OutlierScenario,
    rounds: int,
    seed: int,
    crash_probability: float,
    engine: str = "rounds",
) -> list[float]:
    """Per-round average push-sum error under the same conditions."""
    failure_model = (
        BernoulliCrashes(crash_probability) if crash_probability > 0 else NoFailures()
    )
    engine, nodes = build_push_sum_network(
        scenario.values,
        complete(scenario.n),
        seed=seed,
        failure_model=failure_model,
        engine=engine,
    )
    errors: list[float] = []

    def record(current_engine) -> None:
        live = [nodes[node_id] for node_id in current_engine.live_nodes]
        errors.append(
            average_error((node.estimate for node in live), scenario.true_mean)
        )

    engine.run(rounds, per_round=record)
    return errors


def fig4_cell(params: dict) -> dict:
    """One Figure 4 configuration as an independent sweep cell.

    Each of the four {protocol} x {crash rate} configurations rebuilds
    the delta = 10 outlier scenario from its parameters alone, so the
    cell runs identically in-process or inside a pool worker.
    """
    n_nodes = int(params["n_nodes"])
    seed = int(params["seed"])
    n_outliers = max(1, round(n_nodes * 0.05))
    scenario = outlier_scenario(
        float(params["delta"]),
        n_good=n_nodes - n_outliers,
        n_outliers=n_outliers,
        seed=seed,
    )
    rounds = int(params["rounds"])
    crash_probability = float(params["crash_probability"])
    engine = str(params["engine"])
    if params["protocol"] == "robust":
        errors, survivors = _robust_trace(scenario, rounds, seed, crash_probability, engine)
        return {"errors": [float(e) for e in errors], "survivors": [int(s) for s in survivors]}
    errors = _regular_trace(scenario, rounds, seed, crash_probability, engine)
    return {"errors": [float(e) for e in errors], "survivors": []}


def run_fig4(
    scale: Scale = PAPER,
    delta: float = 10.0,
    rounds: int | None = None,
    seed: int = 4,
    crash_probability: float = CRASH_PROBABILITY,
) -> Fig4Result:
    """Run the four-configuration crash experiment.

    The configurations are declared as a four-cell
    :class:`~repro.sweep.spec.SweepSpec` and executed through
    :func:`repro.sweep.run_sweep` — serially by default, or on
    ``scale.workers`` processes.  Every cell pins the experiment's seed,
    so the traces are identical to running the helpers directly.
    """
    total_rounds = rounds if rounds is not None else min(50, scale.max_rounds)
    base = {
        "delta": delta,
        "n_nodes": scale.n_nodes,
        "rounds": total_rounds,
        "engine": scale.engine,
        "seed": seed,
    }
    spec = SweepSpec(
        name="fig4",
        runner="repro.experiments.fig4:fig4_cell",
        base_seed=seed,
        cells=[
            {"label": "robust_no_crashes", "protocol": "robust", "crash_probability": 0.0, **base},
            {"label": "regular_no_crashes", "protocol": "regular", "crash_probability": 0.0, **base},
            {
                "label": "robust_with_crashes",
                "protocol": "robust",
                "crash_probability": crash_probability,
                **base,
            },
            {
                "label": "regular_with_crashes",
                "protocol": "regular",
                "crash_probability": crash_probability,
                **base,
            },
        ],
    )
    results = run_experiment_sweep(spec, scale)

    return Fig4Result(
        rounds=tuple(range(1, total_rounds + 1)),
        robust_no_crashes=tuple(results["robust_no_crashes"]["errors"]),
        regular_no_crashes=tuple(results["regular_no_crashes"]["errors"]),
        robust_with_crashes=tuple(results["robust_with_crashes"]["errors"]),
        regular_with_crashes=tuple(results["regular_with_crashes"]["errors"]),
        survivors_with_crashes=tuple(results["robust_with_crashes"]["survivors"]),
        delta=delta,
        n_nodes=scale.n_nodes,
    )
