"""Figure 2 — Gaussian Mixture classification of multidimensional data.

Values are generated from three Gaussians in R^2 (the fence-fire scenario
of Section 5.3.1: sensor position x, temperature y); the GM algorithm runs
with ``k = 7`` on a fully connected network until convergence.  The paper
shows the result is "visibly a usable estimation of the input data"; this
module makes that quantitative: the three heaviest recovered components
are matched to the three source Gaussians, and the recovered mixture's
data log-likelihood is compared against a centralised EM fit of the same
data — the natural upper baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import GmmRecovery, match_mixtures
from repro.data.generators import fence_fire_mixture, fence_fire_values
from repro.experiments.common import Scale, PAPER, run_until_convergence
from repro.ml.em import fit_gmm_em
from repro.ml.gmm import GaussianMixtureModel
from repro.schemes.gaussian import classification_to_gmm
from repro.schemes.gm import GaussianMixtureScheme

__all__ = ["Fig2Result", "run_fig2"]


@dataclass(frozen=True)
class Fig2Result:
    """The regenerated Figure 2: source, data, and recovered estimate."""

    source: GaussianMixtureModel
    recovered: GaussianMixtureModel
    recovery: GmmRecovery
    rounds: int
    n_collections: int
    log_likelihood_distributed: float
    log_likelihood_centralized: float
    log_likelihood_source: float

    @property
    def heavy_components(self) -> GaussianMixtureModel:
        """The three heaviest recovered components (the paper's ellipses)."""
        ordered = self.recovered.sorted_by_weight()
        take = min(3, ordered.n_components)
        return GaussianMixtureModel(
            ordered.weights[:take], ordered.means[:take], ordered.covs[:take]
        )


def run_fig2(scale: Scale = PAPER, k: int = 7, seed: int = 2) -> Fig2Result:
    """Run the Figure 2 experiment at the given scale.

    The paper's parameters: 1,000 nodes, fully connected network, k = 7,
    q set by floating-point accuracy (our lattice is 2^-20, finer than
    1/n), run until convergence.  ``scale.engine`` selects the schedule
    (synchronous rounds or the Section 6 Poisson model) — it is threaded
    through :func:`~repro.experiments.common.run_until_convergence`, so
    ``--engine async`` regenerates this figure on the event-driven engine.
    """
    values, _ = fence_fire_values(scale.n_nodes, seed=seed)
    scheme = GaussianMixtureScheme(seed=seed)
    _, nodes, rounds = run_until_convergence(values, scheme, k=k, scale=scale, seed=seed)

    recovered = classification_to_gmm(nodes[0].classification)
    source = fence_fire_mixture()

    # Match only the heavy components; light singletons are the x's of
    # Figure 2c and stay unmatched.
    ordered = recovered.sorted_by_weight()
    take = min(source.n_components, ordered.n_components)
    heavy = GaussianMixtureModel(ordered.weights[:take], ordered.means[:take], ordered.covs[:take])
    recovery = match_mixtures(heavy, source)

    centralized = fit_gmm_em(values, source.n_components, np.random.default_rng(seed)).model
    return Fig2Result(
        source=source,
        recovered=recovered,
        recovery=recovery,
        rounds=rounds,
        n_collections=recovered.n_components,
        log_likelihood_distributed=recovered.log_likelihood(values) / len(values),
        log_likelihood_centralized=centralized.log_likelihood(values) / len(values),
        log_likelihood_source=source.log_likelihood(values) / len(values),
    )
