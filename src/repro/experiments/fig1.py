"""Figure 1 — why centroids are not enough.

The paper's motivating example: two existing collections, A tight and B
wide, and a new value between them.  The centroid rule (distance to the
collection average) assigns the value to A because A's centroid is nearer;
the Gaussian rule (likelihood under the collection's fitted normal)
assigns it to B because B's much larger variance makes the value far more
plausible there.  This module reconstructs the example with concrete value
sets and reports both decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.common import Scale
from repro.ml.gaussian import log_density, pool_moments

__all__ = ["Fig1Result", "run_fig1"]


@dataclass(frozen=True)
class Fig1Result:
    """Both association decisions for the new value.

    The paper's claim holds when ``centroid_choice == "A"`` (misled by
    proximity) while ``gaussian_choice == "B"`` (corrected by variance).
    """

    new_value: np.ndarray
    centroid_a: np.ndarray
    centroid_b: np.ndarray
    distance_to_a: float
    distance_to_b: float
    centroid_choice: str
    log_density_a: float
    log_density_b: float
    gaussian_choice: str

    @property
    def demonstrates_claim(self) -> bool:
        return self.centroid_choice == "A" and self.gaussian_choice == "B"


def run_fig1(
    scale: Optional[Scale] = None, seed: int = 0, n_per_collection: int = 400
) -> Fig1Result:
    """Reconstruct Figure 1's scenario from sampled value sets.

    Collection A: tight cluster (sigma 0.5) centred at the origin.
    Collection B: wide cluster (sigma 3.0) centred at (6, 0).
    New value: (2.4, 0) — closer to A's centroid, but ~5 standard
    deviations from A versus ~1.2 from B.

    ``scale`` is accepted for uniformity with the other ``run_*``
    entry points (the CLI passes it to every experiment), but this
    figure is a purely local two-collection computation — no gossip
    network is built, so ``scale.engine`` and ``scale.n_nodes`` cannot
    affect the result; the collection size is the paper's fixed 400.
    """
    del scale  # engine-invariant: no network is constructed here
    rng = np.random.default_rng(seed)
    values_a = rng.normal([0.0, 0.0], 0.5, size=(n_per_collection, 2))
    values_b = rng.normal([6.0, 0.0], 3.0, size=(n_per_collection, 2))
    new_value = np.array([2.4, 0.0])

    ones = np.ones(n_per_collection)
    zero_covs = np.zeros((n_per_collection, 2, 2))
    mean_a, cov_a = pool_moments(ones, values_a, zero_covs)
    mean_b, cov_b = pool_moments(ones, values_b, zero_covs)

    distance_a = float(np.linalg.norm(new_value - mean_a))
    distance_b = float(np.linalg.norm(new_value - mean_b))
    log_a = float(log_density(new_value, mean_a, cov_a)[0])
    log_b = float(log_density(new_value, mean_b, cov_b)[0])

    return Fig1Result(
        new_value=new_value,
        centroid_a=mean_a,
        centroid_b=mean_b,
        distance_to_a=distance_a,
        distance_to_b=distance_b,
        centroid_choice="A" if distance_a <= distance_b else "B",
        log_density_a=log_a,
        log_density_b=log_b,
        gaussian_choice="A" if log_a >= log_b else "B",
    )
