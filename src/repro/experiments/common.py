"""Shared experiment plumbing: scale presets and convergence-driven runs.

Every experiment module exposes a ``run_*`` function taking a
:class:`Scale`.  The ``paper`` preset reproduces the published setup
(1,000 nodes, fully connected, run to convergence); the ``fast`` preset
shrinks the network so the same code paths run in seconds — that is what
the test suite uses, keeping every experiment covered by ``pytest tests/``
without multi-minute runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import networkx as nx
import numpy as np

from repro.core.convergence import ConvergenceDetector
from repro.core.node import ClassifierNode
from repro.core.scheme import SummaryScheme
from repro.network.factory import ENGINES
from repro.network.failures import FailureModel
from repro.network.kernel import SimulationKernel
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.sweep import SweepSpec, run_sweep

__all__ = [
    "Scale",
    "PAPER",
    "BENCH",
    "FAST",
    "preset",
    "run_until_convergence",
    "run_experiment_sweep",
]


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime.

    Attributes
    ----------
    name:
        Preset label, echoed in reports.
    n_nodes:
        Network size (the paper uses 1,000).
    max_rounds:
        Upper bound on gossip rounds per run.
    convergence_tolerance:
        Per-round movement below which a probe node counts as settled.
    probe_count:
        Convergence is tracked on this many probe nodes (tracking all
        1,000 would cost one transport LP per node per round).
    deltas:
        The Figure 3 sweep values.  Sampled densely around delta ~ 4-5,
        where the paper's miss-rate cliff sits: below ~4 the planted
        outliers are not density-distinguishable at all, at 4-4.5 they
        are flagged but inseparable, and from ~5 the classifier isolates
        them.
    engine:
        Which scheduler drives the gossip — ``"rounds"`` (the paper's
        Section 5.3 synchronous methodology, the default) or ``"async"``
        (the Section 6 Poisson schedule; one "round" is then one mean
        firing interval of simulated time).  Threaded through every
        experiment so each figure and robustness sweep runs identically
        on either execution model.
    workers:
        Worker processes for experiments that fan their grids out
        through :mod:`repro.sweep`.  ``0`` (the default) runs every
        cell inline in this process; results are byte-identical either
        way, so this is purely a wall-clock knob.
    """

    name: str
    n_nodes: int
    max_rounds: int
    convergence_tolerance: float = 1e-4
    probe_count: int = 8
    deltas: tuple[float, ...] = (
        0.0, 2.5, 4.0, 4.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0,
    )
    engine: str = "rounds"
    workers: int = 0

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; choose from {ENGINES}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def with_overrides(self, **kwargs) -> "Scale":
        return replace(self, **kwargs)

    def as_dict(self) -> dict:
        """A JSON-serialisable view (``deltas`` becomes a list)."""
        return {
            "name": self.name,
            "n_nodes": self.n_nodes,
            "max_rounds": self.max_rounds,
            "convergence_tolerance": self.convergence_tolerance,
            "probe_count": self.probe_count,
            "deltas": list(self.deltas),
            "engine": self.engine,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scale":
        payload = dict(data)
        if "deltas" in payload:
            payload["deltas"] = tuple(payload["deltas"])
        return cls(**payload)


#: The published configuration (Section 5.3).
PAPER = Scale(name="paper", n_nodes=1000, max_rounds=60)

#: The default for the benchmark suite: large enough that every paper
#: shape (miss-rate cliff, linear regular error, crash indifference)
#: reproduces clearly, small enough that the whole suite runs in minutes.
BENCH = Scale(name="bench", n_nodes=400, max_rounds=45)

#: A seconds-scale configuration exercising identical code paths.
FAST = Scale(
    name="fast",
    n_nodes=100,
    max_rounds=30,
    deltas=(0.0, 5.0, 10.0, 20.0),
)

_PRESETS = {"paper": PAPER, "bench": BENCH, "fast": FAST}


def preset(name: str) -> Scale:
    """Look up a preset by name ('paper' or 'fast')."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_PRESETS)}") from None


def run_experiment_sweep(spec: SweepSpec, scale: Scale) -> dict:
    """Execute an experiment's cell grid through :mod:`repro.sweep`.

    Returns results keyed by cell key (the ``label`` for explicit
    cells).  Experiments are not partial-result consumers the way ad-hoc
    sweeps are — a figure with a missing curve is wrong, not degraded —
    so any failed cell raises instead of being silently dropped.
    """
    report = run_sweep(spec, workers=scale.workers)
    if report.failures:
        summary = "; ".join(
            f"{key}: {error.strip().splitlines()[-1] if error.strip() else 'unknown error'}"
            for key, error in report.failures.items()
        )
        raise RuntimeError(f"sweep {spec.name!r} had failed cells: {summary}")
    return report.results


def run_until_convergence(
    values: np.ndarray,
    scheme: SummaryScheme,
    k: int,
    scale: Scale,
    seed: int = 0,
    graph: Optional[nx.Graph] = None,
    track_aux: bool = False,
    failure_model: Optional[FailureModel] = None,
    variant: str = "push",
) -> tuple[SimulationKernel, list[ClassifierNode], int]:
    """Run Algorithm 1 until probe nodes stop moving (or max_rounds).

    Returns ``(engine, nodes, rounds_run)``.  Convergence is declared when
    ``probe_count`` evenly spaced nodes all move less than
    ``scale.convergence_tolerance`` (classification EMD) for three
    consecutive rounds — a practical stand-in for the paper's "run until
    convergence" which its asynchronous model cannot bound a priori.

    ``scale.engine`` selects the scheduler; the kernel's uniform ``run``
    drives either one in round-equivalents, so "rounds to convergence"
    is measured on the same axis for both execution models.
    """
    n = len(values)
    if graph is None:
        graph = complete(n)
    engine, nodes = build_classification_network(
        values,
        scheme,
        k=k,
        graph=graph,
        seed=seed,
        track_aux=track_aux,
        failure_model=failure_model,
        variant=variant,
        engine=scale.engine,
    )
    probe_step = max(1, n // max(1, scale.probe_count))
    detector = ConvergenceDetector(scheme, tolerance=scale.convergence_tolerance)

    def settled(current_engine: SimulationKernel) -> bool:
        probes = [
            nodes[node_id]
            for node_id in range(0, n, probe_step)
            if current_engine.is_live(node_id)
        ]
        if not probes:
            return True
        return detector.update(probes)

    rounds_run = engine.run(scale.max_rounds, stop_condition=settled)
    return engine, nodes, rounds_run
