"""Scalability and message-size experiments.

These back the paper's efficiency claims, which the evaluation section
asserts but does not plot:

- **Message size is independent of n** (Section 2: message size depends
  "only on the parameters of the dataset, and not on the number of
  nodes").  :func:`run_message_size_ablation` serialises *real* payloads
  from converged runs at different network sizes through the binary wire
  format and compares byte counts — across sizes and across schemes
  (full vs diagonal Gaussians vs centroids).
- **Rounds to convergence grow slowly with n** on the fully connected
  gossip topology.  :func:`run_scalability` sweeps n and reports rounds,
  total messages and bytes per message.
- **Asynchrony is not load-bearing** (Section 6 proves convergence
  without rounds).  :func:`run_async_ablation` runs the event-driven
  engine and reports simulated time and events to a disagreement target.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.convergence import disagreement
from repro.core.node import ClassifierNode
from repro.core.serialization import codec_for_scheme, encode_payload
from repro.experiments.ablations import AblationRow
from repro.experiments.common import Scale, PAPER, run_until_convergence
from repro.network.topology import complete, ring
from repro.protocols.classification import build_classification_network
from repro.schemes.centroid import CentroidScheme
from repro.schemes.diagonal import DiagonalGaussianScheme
from repro.schemes.gm import GaussianMixtureScheme

__all__ = [
    "run_message_size_ablation",
    "run_scalability",
    "run_async_ablation",
    "measured_payload_bytes",
]


def _two_cluster_values(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    half = n // 2
    return np.vstack(
        [rng.normal([0, 0], 0.6, size=(half, 2)), rng.normal([8, 8], 0.6, size=(n - half, 2))]
    )


def measured_payload_bytes(
    nodes: Sequence[ClassifierNode],
    scheme,
    dimension: int,
    probe_count: int = 16,
) -> int:
    """Largest wire size of a real split payload across probe nodes.

    Each probe node performs one split, the would-be message is
    serialised, and the halves are merged straight back in — weight is
    conserved exactly and the summaries are unchanged (merging two
    identical summaries is the identity under R4), so the measurement
    does not disturb the converged state.
    """
    codec = codec_for_scheme(scheme, dimension)
    worst = 0
    step = max(1, len(nodes) // probe_count)
    for node in list(nodes)[::step]:
        payload = node.make_message()
        if payload:
            worst = max(worst, len(encode_payload(payload, codec)))
            node.receive(payload)  # put the weight straight back
    return worst


def run_message_size_ablation(scale: Scale = PAPER, seed: int = 21) -> list[AblationRow]:
    """Wire bytes per message: scheme x network size.

    The claim under test: for a fixed scheme and k, the byte count is the
    same at every network size (the wire format has no n-dependent field,
    and the collection count is bounded by k).
    """
    sizes = sorted({min(scale.n_nodes, 64), min(scale.n_nodes, 192)})
    schemes = [
        ("centroid", lambda s: CentroidScheme()),
        ("diagonal_gaussian", lambda s: DiagonalGaussianScheme(seed=s)),
        ("gaussian_mixture", lambda s: GaussianMixtureScheme(seed=s)),
    ]
    rows = []
    for name, factory in schemes:
        measured = {}
        for n in sizes:
            values = _two_cluster_values(n, seed)
            scheme = factory(seed)
            run_scale = scale.with_overrides(n_nodes=n, max_rounds=min(scale.max_rounds, 30))
            _, nodes, _ = run_until_convergence(values, scheme, k=2, scale=run_scale, seed=seed)
            measured[n] = measured_payload_bytes(nodes, scheme, dimension=2)
        rows.append(
            AblationRow(
                label=name,
                metrics={
                    **{f"bytes_at_n={n}": float(b) for n, b in measured.items()},
                    "size_independent_of_n": float(len(set(measured.values())) == 1),
                },
            )
        )
    return rows


def run_scalability(
    scale: Scale = PAPER,
    seed: int = 22,
    sizes: Sequence[int] | None = None,
    target_disagreement: float = 0.05,
) -> list[AblationRow]:
    """Rounds / messages / bytes to convergence as n grows."""
    if sizes is None:
        cap = scale.n_nodes
        sizes = sorted({min(cap, n) for n in (50, 100, 200, 400)})
    rows = []
    for n in sizes:
        values = _two_cluster_values(n, seed)
        scheme = GaussianMixtureScheme(seed=seed)
        run_scale = scale.with_overrides(n_nodes=n)
        engine, nodes, rounds = run_until_convergence(
            values, scheme, k=2, scale=run_scale, seed=seed
        )
        rows.append(
            AblationRow(
                label=f"n={n}",
                metrics={
                    "n": float(n),
                    "rounds": float(rounds),
                    "messages": float(engine.metrics.messages_sent),
                    "messages_per_node": engine.metrics.messages_sent / n,
                    "bytes_per_message": float(
                        measured_payload_bytes(nodes, scheme, dimension=2)
                    ),
                    "final_disagreement": disagreement(nodes, scheme),
                },
            )
        )
    return rows


def run_async_ablation(
    scale: Scale = PAPER,
    seed: int = 23,
    target_disagreement: float = 0.1,
) -> list[AblationRow]:
    """Event-driven convergence on dense and sparse topologies.

    Reports the simulated time and event count at which the network's
    disagreement first drops below the target — the asynchronous
    analogue of "rounds to convergence".
    """
    n = min(scale.n_nodes, 32)
    values = _two_cluster_values(n, seed)
    graphs = {"complete": complete(n), "ring": ring(n)}
    rows = []
    for name, graph in graphs.items():
        scheme = GaussianMixtureScheme(seed=seed)
        engine, nodes = build_classification_network(
            values, scheme, k=2, graph=graph, seed=seed, engine="async"
        )
        horizon = 40.0
        reached_at = float("nan")
        while horizon <= 20000.0:
            engine.run_until(horizon)
            gap = disagreement(nodes, scheme)
            if gap < target_disagreement:
                reached_at = engine.now
                break
            horizon *= 2.0
        rows.append(
            AblationRow(
                label=name,
                metrics={
                    "sim_time_to_target": reached_at,
                    "events": float(engine.metrics.events),
                    "messages": float(engine.metrics.messages_sent),
                    "final_disagreement": disagreement(nodes, scheme),
                },
            )
        )
    return rows
