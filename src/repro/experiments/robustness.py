"""Robustness extensions beyond Figure 3/4's single axis.

The paper's companion report [8] ("Distributed clustering for robust
aggregation in large networks", HotDep 2009) analyses the robust-average
application along further axes; these experiments rebuild the two most
informative ones, plus a stress test the paper only implies:

- :func:`run_outlier_fraction_sweep` — Figure 3 fixes 5% outliers and
  sweeps their distance; here the distance is fixed (well-separated,
  delta = 10) and the *contamination level* sweeps from 1% to 30%.  The
  breakdown point of the heaviest-collection read-out is 50%; the robust
  error should stay near the noise floor until contamination approaches
  it, while the regular error grows linearly (slope ~ delta).
- :func:`run_crash_rate_sweep` — Figure 4 fixes 5% crashes per round;
  here the per-round crash probability sweeps upward, measuring how hard
  the network can be killed before the surviving estimate degrades.
- :func:`run_k_mismatch` — the robust application sets k = 2 hoping for
  one good and one outlier collection; what happens with k = 3, 4, 5?
  (More collections fragment the good mass; the heaviest-collection mean
  remains accurate, which is the claim under test.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.accuracy import average_error
from repro.analysis.outliers import robust_mean
from repro.data.generators import outlier_scenario
from repro.experiments.ablations import AblationRow
from repro.experiments.common import Scale, PAPER
from repro.network.failures import BernoulliCrashes
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.gm import GaussianMixtureScheme

__all__ = [
    "run_outlier_fraction_sweep",
    "run_crash_rate_sweep",
    "run_k_mismatch",
]


def _run_robust(scenario, k, rounds, seed, failure_model=None, engine_kind="rounds"):
    """Robust (GM, k collections) error, averaged over live nodes."""
    engine, nodes = build_classification_network(
        scenario.values,
        GaussianMixtureScheme(seed=seed),
        k=k,
        graph=complete(scenario.n),
        seed=seed,
        failure_model=failure_model,
        engine=engine_kind,
    )
    engine.run(rounds)
    live = [nodes[node_id] for node_id in engine.live_nodes]
    error = average_error(
        (robust_mean(node.classification) for node in live), scenario.true_mean
    )
    return error, engine


def _run_regular(scenario, rounds, seed, failure_model=None, engine_kind="rounds"):
    """Push-sum error under identical conditions."""
    engine, nodes = build_push_sum_network(
        scenario.values,
        complete(scenario.n),
        seed=seed,
        failure_model=failure_model,
        engine=engine_kind,
    )
    engine.run(rounds)
    return average_error(
        (nodes[node_id].estimate for node_id in engine.live_nodes), scenario.true_mean
    )


def run_outlier_fraction_sweep(
    scale: Scale = PAPER,
    seed: int = 31,
    fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.20, 0.30),
    delta: float = 10.0,
) -> list[AblationRow]:
    """Robust vs regular error as the contamination level grows."""
    rows = []
    rounds = min(scale.max_rounds, 40)
    for fraction in fractions:
        n_outliers = max(1, round(scale.n_nodes * fraction))
        scenario = outlier_scenario(
            delta, n_good=scale.n_nodes - n_outliers, n_outliers=n_outliers, seed=seed
        )
        robust, _ = _run_robust(scenario, k=2, rounds=rounds, seed=seed, engine_kind=scale.engine)
        regular = _run_regular(scenario, rounds=rounds, seed=seed, engine_kind=scale.engine)
        rows.append(
            AblationRow(
                label=f"{fraction:.0%}",
                metrics={
                    "outlier_fraction": fraction,
                    "robust_error": robust,
                    "regular_error": regular,
                },
            )
        )
    return rows


def run_crash_rate_sweep(
    scale: Scale = PAPER,
    seed: int = 32,
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    delta: float = 10.0,
    rounds: int = 40,
) -> list[AblationRow]:
    """Surviving-node estimate quality as the crash rate grows."""
    n_outliers = max(1, round(scale.n_nodes * 0.05))
    scenario = outlier_scenario(
        delta, n_good=scale.n_nodes - n_outliers, n_outliers=n_outliers, seed=seed
    )
    rows = []
    for rate in rates:
        failure_model = BernoulliCrashes(rate, min_survivors=4) if rate > 0 else None
        robust, engine = _run_robust(
            scenario,
            k=2,
            rounds=rounds,
            seed=seed,
            failure_model=failure_model,
            engine_kind=scale.engine,
        )
        rows.append(
            AblationRow(
                label=f"p={rate:.2f}",
                metrics={
                    "crash_rate": rate,
                    "robust_error": robust,
                    "survivors": float(len(engine.live_nodes)),
                },
            )
        )
    return rows


def run_k_mismatch(
    scale: Scale = PAPER,
    seed: int = 33,
    ks: Sequence[int] = (2, 3, 4, 5),
    delta: float = 10.0,
) -> list[AblationRow]:
    """Robust averaging with more collections than the two it hopes for."""
    n_outliers = max(1, round(scale.n_nodes * 0.05))
    scenario = outlier_scenario(
        delta, n_good=scale.n_nodes - n_outliers, n_outliers=n_outliers, seed=seed
    )
    rounds = min(scale.max_rounds, 40)
    rows = []
    for k in ks:
        robust, _ = _run_robust(scenario, k=k, rounds=rounds, seed=seed, engine_kind=scale.engine)
        rows.append(
            AblationRow(
                label=f"k={k}",
                metrics={"k": float(k), "robust_error": robust},
            )
        )
    return rows
