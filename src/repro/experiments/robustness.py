"""Robustness extensions beyond Figure 3/4's single axis.

The paper's companion report [8] ("Distributed clustering for robust
aggregation in large networks", HotDep 2009) analyses the robust-average
application along further axes; these experiments rebuild the two most
informative ones, plus a stress test the paper only implies:

- :func:`run_outlier_fraction_sweep` — Figure 3 fixes 5% outliers and
  sweeps their distance; here the distance is fixed (well-separated,
  delta = 10) and the *contamination level* sweeps from 1% to 30%.  The
  breakdown point of the heaviest-collection read-out is 50%; the robust
  error should stay near the noise floor until contamination approaches
  it, while the regular error grows linearly (slope ~ delta).
- :func:`run_crash_rate_sweep` — Figure 4 fixes 5% crashes per round;
  here the per-round crash probability sweeps upward, measuring how hard
  the network can be killed before the surviving estimate degrades.
- :func:`run_k_mismatch` — the robust application sets k = 2 hoping for
  one good and one outlier collection; what happens with k = 3, 4, 5?
  (More collections fragment the good mass; the heaviest-collection mean
  remains accurate, which is the claim under test.)
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.accuracy import average_error
from repro.analysis.outliers import robust_mean
from repro.data.generators import outlier_scenario
from repro.experiments.ablations import AblationRow
from repro.experiments.common import Scale, PAPER, run_experiment_sweep
from repro.network.failures import BernoulliCrashes
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.gm import GaussianMixtureScheme
from repro.sweep import SweepSpec

__all__ = [
    "run_outlier_fraction_sweep",
    "run_crash_rate_sweep",
    "run_k_mismatch",
    "robustness_cell",
]


def _run_robust(scenario, k, rounds, seed, failure_model=None, engine_kind="rounds"):
    """Robust (GM, k collections) error, averaged over live nodes."""
    engine, nodes = build_classification_network(
        scenario.values,
        GaussianMixtureScheme(seed=seed),
        k=k,
        graph=complete(scenario.n),
        seed=seed,
        failure_model=failure_model,
        engine=engine_kind,
    )
    engine.run(rounds)
    live = [nodes[node_id] for node_id in engine.live_nodes]
    error = average_error(
        (robust_mean(node.classification) for node in live), scenario.true_mean
    )
    return error, engine


def _run_regular(scenario, rounds, seed, failure_model=None, engine_kind="rounds"):
    """Push-sum error under identical conditions."""
    engine, nodes = build_push_sum_network(
        scenario.values,
        complete(scenario.n),
        seed=seed,
        failure_model=failure_model,
        engine=engine_kind,
    )
    engine.run(rounds)
    return average_error(
        (nodes[node_id].estimate for node_id in engine.live_nodes), scenario.true_mean
    )


def robustness_cell(params: dict) -> dict:
    """One robustness-sweep cell: mode selects which axis it measures.

    ``mode="fraction"`` measures robust and regular error at one
    contamination level; ``mode="crash"`` measures robust error and
    survivor count at one per-round crash rate; ``mode="k"`` measures
    robust error at one collection count.  Every cell rebuilds its
    scenario from parameters alone so it can run in any process.
    """
    mode = str(params["mode"])
    n_nodes = int(params["n_nodes"])
    seed = int(params["seed"])
    delta = float(params["delta"])
    rounds = int(params["rounds"])
    engine_kind = str(params["engine"])
    fraction = float(params.get("fraction", 0.05))
    n_outliers = max(1, round(n_nodes * fraction))
    scenario = outlier_scenario(
        delta, n_good=n_nodes - n_outliers, n_outliers=n_outliers, seed=seed
    )
    if mode == "fraction":
        robust, _ = _run_robust(scenario, k=2, rounds=rounds, seed=seed, engine_kind=engine_kind)
        regular = _run_regular(scenario, rounds=rounds, seed=seed, engine_kind=engine_kind)
        return {"robust_error": float(robust), "regular_error": float(regular)}
    if mode == "crash":
        rate = float(params["rate"])
        failure_model = BernoulliCrashes(rate, min_survivors=4) if rate > 0 else None
        robust, engine = _run_robust(
            scenario,
            k=2,
            rounds=rounds,
            seed=seed,
            failure_model=failure_model,
            engine_kind=engine_kind,
        )
        return {"robust_error": float(robust), "survivors": len(engine.live_nodes)}
    if mode == "k":
        robust, _ = _run_robust(
            scenario, k=int(params["k"]), rounds=rounds, seed=seed, engine_kind=engine_kind
        )
        return {"robust_error": float(robust)}
    raise ValueError(f"unknown robustness cell mode {mode!r}")


def _robustness_sweep(name: str, cells: list[dict], scale: Scale, seed: int) -> dict:
    spec = SweepSpec(
        name=name,
        runner="repro.experiments.robustness:robustness_cell",
        base_seed=seed,
        cells=cells,
    )
    return run_experiment_sweep(spec, scale)


def run_outlier_fraction_sweep(
    scale: Scale = PAPER,
    seed: int = 31,
    fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.20, 0.30),
    delta: float = 10.0,
) -> list[AblationRow]:
    """Robust vs regular error as the contamination level grows."""
    rounds = min(scale.max_rounds, 40)
    labels = [f"{fraction:.0%}" for fraction in fractions]
    cells = [
        {
            "label": label,
            "mode": "fraction",
            "fraction": fraction,
            "delta": delta,
            "n_nodes": scale.n_nodes,
            "rounds": rounds,
            "engine": scale.engine,
            "seed": seed,
        }
        for label, fraction in zip(labels, fractions)
    ]
    results = _robustness_sweep("robustness-outliers", cells, scale, seed)
    return [
        AblationRow(
            label=label,
            metrics={
                "outlier_fraction": fraction,
                "robust_error": results[label]["robust_error"],
                "regular_error": results[label]["regular_error"],
            },
        )
        for label, fraction in zip(labels, fractions)
    ]


def run_crash_rate_sweep(
    scale: Scale = PAPER,
    seed: int = 32,
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    delta: float = 10.0,
    rounds: int = 40,
) -> list[AblationRow]:
    """Surviving-node estimate quality as the crash rate grows."""
    labels = [f"p={rate:.2f}" for rate in rates]
    cells = [
        {
            "label": label,
            "mode": "crash",
            "rate": rate,
            "delta": delta,
            "n_nodes": scale.n_nodes,
            "rounds": rounds,
            "engine": scale.engine,
            "seed": seed,
        }
        for label, rate in zip(labels, rates)
    ]
    results = _robustness_sweep("robustness-crashes", cells, scale, seed)
    return [
        AblationRow(
            label=label,
            metrics={
                "crash_rate": rate,
                "robust_error": results[label]["robust_error"],
                "survivors": float(results[label]["survivors"]),
            },
        )
        for label, rate in zip(labels, rates)
    ]


def run_k_mismatch(
    scale: Scale = PAPER,
    seed: int = 33,
    ks: Sequence[int] = (2, 3, 4, 5),
    delta: float = 10.0,
) -> list[AblationRow]:
    """Robust averaging with more collections than the two it hopes for."""
    rounds = min(scale.max_rounds, 40)
    labels = [f"k={k}" for k in ks]
    cells = [
        {
            "label": label,
            "mode": "k",
            "k": k,
            "delta": delta,
            "n_nodes": scale.n_nodes,
            "rounds": rounds,
            "engine": scale.engine,
            "seed": seed,
        }
        for label, k in zip(labels, ks)
    ]
    results = _robustness_sweep("robustness-k", cells, scale, seed)
    return [
        AblationRow(
            label=label,
            metrics={"k": float(k), "robust_error": results[label]["robust_error"]},
        )
        for label, k in zip(labels, ks)
    ]
