"""Command-line entry point: regenerate any figure or ablation.

Usage::

    python -m repro.experiments.run fig2 --scale fast
    python -m repro.experiments.run fig3 --scale paper
    python -m repro.experiments.run ablation-topology
    python -m repro.experiments.run all --scale fast
    python -m repro.experiments.run fig4 --scale fast --trace trace.jsonl
    python -m repro.experiments.run ablation-k --scale bench --workers 4

Prints the same fixed-width series the benchmark suite emits.  With
``--trace PATH``, every engine the experiment constructs writes its
structured event log (sends, deliveries, drops, crashes, round closes,
EM steps, profiled spans) to ``PATH`` as JSONL; summarise it afterwards
with ``python -m repro.obs.report PATH``.  Adding ``--telemetry
[STRIDE]`` samples each engine's per-round convergence gauges (distinct
classifications, weight conservation, message/byte windows, cache hit
ratios) into the same trace — follow it live with ``python -m
repro.obs.monitor PATH``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis.reporting import banner, format_series, format_table
from repro.network.factory import ENGINES
from repro.experiments import (
    preset,
    run_partition_heal,
    run_async_ablation,
    run_centralized_gap,
    run_crash_rate_sweep,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_gossip_variant_ablation,
    run_k_ablation,
    run_k_mismatch,
    run_message_size_ablation,
    run_outlier_fraction_sweep,
    run_quantum_ablation,
    run_scalability,
    run_scheme_ablation,
    run_topology_ablation,
)


def _print_fig1(scale) -> None:
    result = run_fig1(scale)
    print(banner("Figure 1 — centroid vs Gaussian association"))
    rows = [
        ["distance to centroid", result.distance_to_a, result.distance_to_b],
        ["log density", result.log_density_a, result.log_density_b],
    ]
    print(format_table(["criterion", "collection A (tight)", "collection B (wide)"], rows))
    print(f"centroid rule associates the new value with: {result.centroid_choice}")
    print(f"Gaussian rule associates the new value with: {result.gaussian_choice}")
    print(f"demonstrates the paper's claim: {result.demonstrates_claim}")


def _print_fig2(scale) -> None:
    result = run_fig2(scale)
    print(banner(f"Figure 2 — GM classification of fence-fire data ({scale.name} scale)"))
    print(f"converged after {result.rounds} rounds; {result.n_collections} collections at node 0")
    rows = []
    for match in result.recovery.matches:
        rows.append(
            [
                f"source[{match.true_index}]",
                match.mean_distance,
                match.weight_error,
                match.cov_frobenius_error,
            ]
        )
    print(format_table(["component", "mean_dist", "weight_err", "cov_frob_err"], rows))
    rows = [
        ["distributed GM", result.log_likelihood_distributed],
        ["centralized EM", result.log_likelihood_centralized],
        ["true source", result.log_likelihood_source],
    ]
    print(format_table(["model", "loglik/value"], rows))


def _print_fig3(scale) -> None:
    result = run_fig3(scale)
    print(
        format_series(
            f"Figure 3 — outlier separation sweep ({scale.name} scale, n={result.n_nodes})",
            "delta",
            result.column("delta"),
            {
                "missed_outliers_%": result.column("missed_outliers_pct"),
                "robust_error": result.column("robust_error"),
                "regular_error": result.column("regular_error"),
                "rounds": result.column("rounds"),
            },
        )
    )


def _print_fig4(scale) -> None:
    result = run_fig4(scale)
    print(
        format_series(
            f"Figure 4 — crash robustness (delta={result.delta}, {scale.name} scale)",
            "round",
            list(result.rounds),
            {
                "robust_no_crash": list(result.robust_no_crashes),
                "regular_no_crash": list(result.regular_no_crashes),
                "robust_crash": list(result.robust_with_crashes),
                "regular_crash": list(result.regular_with_crashes),
                "survivors": list(result.survivors_with_crashes),
            },
        )
    )


def _print_partition_heal(scale) -> None:
    result = run_partition_heal(scale)
    print(
        format_series(
            f"Partition and heal (n={result.n_nodes}, cut rounds "
            f"[{result.partition_start}, {result.partition_end}))",
            "round",
            list(result.rounds),
            {"cross_partition_disagreement": list(result.cross_disagreement)},
        )
    )


def _print_ablation(title: str, runner: Callable) -> Callable:
    def printer(scale) -> None:
        rows = runner(scale)
        print(banner(title))
        headers = ["config", *rows[0].metrics.keys()]
        table = [[row.label, *row.metrics.values()] for row in rows]
        print(format_table(headers, table))

    return printer


COMMANDS: dict[str, Callable] = {
    "fig1": _print_fig1,
    "fig2": _print_fig2,
    "fig3": _print_fig3,
    "fig4": _print_fig4,
    "ablation-topology": _print_ablation("Ablation — topology", run_topology_ablation),
    "ablation-gossip": _print_ablation("Ablation — gossip variant", run_gossip_variant_ablation),
    "ablation-k": _print_ablation("Ablation — compression bound k", run_k_ablation),
    "ablation-quantum": _print_ablation("Ablation — weight quantum q", run_quantum_ablation),
    "ablation-scheme": _print_ablation("Ablation — summary scheme", run_scheme_ablation),
    "ablation-centralized": _print_ablation(
        "Ablation — distributed vs centralized", run_centralized_gap
    ),
    "ablation-message-size": _print_ablation(
        "Ablation — wire bytes per message", run_message_size_ablation
    ),
    "ablation-scalability": _print_ablation(
        "Ablation — scalability in n", run_scalability
    ),
    "ablation-async": _print_ablation(
        "Ablation — asynchronous convergence", run_async_ablation
    ),
    "robustness-outlier-fraction": _print_ablation(
        "Robustness — contamination level sweep", run_outlier_fraction_sweep
    ),
    "robustness-crash-rate": _print_ablation(
        "Robustness — crash rate sweep", run_crash_rate_sweep
    ),
    "robustness-k-mismatch": _print_ablation(
        "Robustness — k mismatch", run_k_mismatch
    ),
    "partition-heal": _print_partition_heal,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run",
        description="Regenerate the paper's figures and ablations.",
    )
    parser.add_argument("experiment", choices=[*COMMANDS.keys(), "all"])
    parser.add_argument("--scale", default="paper", choices=["paper", "bench", "fast"])
    parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINES),
        help="scheduler driving the gossip: 'rounds' (synchronous, the paper's "
        "Section 5.3 methodology, the default) or 'async' (Section 6 Poisson model)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the experiments that fan out through repro.sweep "
        "(0 = run every cell inline, the default; results are identical either way)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace of the run (see repro.obs.report)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="STRIDE",
        type=int,
        nargs="?",
        const=1,
        default=None,
        help="sample per-round convergence telemetry every STRIDE-th round "
        "(default stride 1 when the flag is given bare); telemetry events "
        "land in the --trace file when one is set",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    scale = preset(args.scale)
    if args.engine is not None:
        scale = scale.with_overrides(engine=args.engine)
    if args.workers:
        scale = scale.with_overrides(workers=args.workers)
    names = list(COMMANDS) if args.experiment == "all" else [args.experiment]

    def execute() -> None:
        for name in names:
            COMMANDS[name](scale)
            print()

    def execute_with_telemetry() -> None:
        if args.telemetry is None:
            execute()
            return
        from repro.obs import TelemetryConfig, telemetry

        with telemetry(TelemetryConfig(stride=args.telemetry)):
            execute()

    if args.trace:
        from repro.obs import JsonlSink, tracing

        try:
            sink = JsonlSink(args.trace)
        except OSError as exc:
            parser.error(f"cannot open trace file: {exc}")
        with tracing(sink):
            execute_with_telemetry()
    else:
        execute_with_telemetry()
    return 0


if __name__ == "__main__":
    sys.exit(main())
