"""Partition-and-heal: temporary network splits.

The convergence theorem assumes a static connected topology, but its
machinery (fairness + reliable links) only needs connectivity to hold
*eventually*.  This experiment cuts a network into two halves for a
window of rounds and measures three phases:

1. **pre-partition** — the whole network converging normally;
2. **partitioned** — each side converging to a classification of *its
   own* values (the two sides disagree, by design);
3. **healed** — the cut edges return and the sides reconcile to the
   global classification.

The measured quantity is the disagreement between the two sides (the
classification EMD between a probe node on each side), which should rise
during the partition and collapse after healing — demonstrating that
temporary violations of the connectivity assumption delay convergence
without destroying it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import classification_distance
from repro.experiments.common import Scale, PAPER
from repro.network.links import WindowedOutage, cut_edges
from repro.network.topology import complete
from repro.protocols.classification import build_classification_network
from repro.schemes.gm import GaussianMixtureScheme

__all__ = ["PartitionResult", "run_partition_heal"]


@dataclass(frozen=True)
class PartitionResult:
    """Per-round cross-partition disagreement trace."""

    rounds: tuple[int, ...]
    cross_disagreement: tuple[float, ...]
    partition_start: int
    partition_end: int
    n_nodes: int

    def phase_mean(self, start: int, end: int) -> float:
        """Mean disagreement over rounds ``[start, end)`` (1-based rounds)."""
        values = [
            gap
            for round_index, gap in zip(self.rounds, self.cross_disagreement)
            if start <= round_index < end
        ]
        if not values:
            raise ValueError("empty phase window")
        return float(np.mean(values))


def run_partition_heal(
    scale: Scale = PAPER,
    seed: int = 41,
    partition_start: int = 12,
    partition_length: int = 15,
    total_rounds: int = 60,
) -> PartitionResult:
    """Run the three-phase partition experiment on a complete graph.

    The two halves hold values from *different* clusters, so while
    partitioned each side can only describe half the data and the
    cross-side disagreement grows; healing lets the halves exchange
    weight again and the disagreement collapses.
    """
    n = min(scale.n_nodes, 120)
    half = n // 2
    rng = np.random.default_rng(seed)
    # Side A holds cluster-0-heavy data, side B cluster-1-heavy data, so
    # a partition visibly starves each side of the other cluster.
    values = np.vstack(
        [rng.normal([0, 0], 0.6, size=(half, 2)), rng.normal([8, 8], 0.6, size=(n - half, 2))]
    )
    graph = complete(n)
    outage = WindowedOutage(
        cut_edges(graph, range(half)),
        start=partition_start,
        end=partition_start + partition_length,
    )
    scheme = GaussianMixtureScheme(seed=seed)
    engine, nodes = build_classification_network(
        values, scheme, k=2, graph=graph, seed=seed, link_schedule=outage,
        engine=scale.engine,
    )

    probe_a, probe_b = nodes[0], nodes[n - 1]
    rounds: list[int] = []
    gaps: list[float] = []

    def record(current_engine) -> None:
        # Round-equivalent count; works on either scheduler (the async
        # engine has no round counter).
        rounds.append(len(rounds) + 1)
        gaps.append(
            classification_distance(
                probe_a.classification, probe_b.classification, scheme
            )
        )

    engine.run(total_rounds, per_round=record)
    return PartitionResult(
        rounds=tuple(rounds),
        cross_disagreement=tuple(gaps),
        partition_start=partition_start,
        partition_end=partition_start + partition_length,
        n_nodes=n,
    )
