"""Ablation experiments for the design choices the paper calls out.

Each function regenerates one ablation series:

- :func:`run_topology_ablation` — Section 6 claims convergence on *any*
  connected topology; measure how topology shape affects speed.
- :func:`run_gossip_variant_ablation` — Section 4.1's push / pull /
  push-pull communication patterns.
- :func:`run_k_ablation` — the compression bound ``k`` versus estimate
  quality on the fence-fire workload.
- :func:`run_quantum_ablation` — the weight quantum ``q``: the paper
  assumes ``q << 1/n``; coarse lattices should visibly distort weights.
- :func:`run_scheme_ablation` — centroids versus Gaussians versus
  histograms on anisotropic data (Figure 1's claim, at network scale).
- :func:`run_centralized_gap` — the distributed GM estimate versus
  centralised EM and k-means on identical data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.convergence import disagreement
from repro.core.node import ClassifierNode
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.data.generators import fence_fire_mixture, fence_fire_values
from repro.experiments.common import Scale, PAPER, run_until_convergence
from repro.ml.em import fit_gmm_em
from repro.ml.gmm import GaussianMixtureModel
from repro.ml.kmeans import weighted_kmeans
from repro.ml.linalg import regularize_covariance
from repro.network import topology
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gaussian import classification_to_gmm
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme

__all__ = [
    "AblationRow",
    "run_topology_ablation",
    "run_gossip_variant_ablation",
    "run_k_ablation",
    "run_quantum_ablation",
    "run_scheme_ablation",
    "run_centralized_gap",
    "weighted_assignment_accuracy",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome: a label plus named measurements."""

    label: str
    metrics: dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


def _two_cluster_values(n: int, seed: int, separation: float = 8.0) -> tuple[np.ndarray, np.ndarray]:
    """Balanced 2-cluster R^2 data with ground-truth labels."""
    rng = np.random.default_rng(seed)
    half = n // 2
    a = rng.normal([0.0, 0.0], 0.6, size=(half, 2))
    b = rng.normal([separation, separation], 0.6, size=(n - half, 2))
    values = np.vstack([a, b])
    labels = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])
    return values, labels


def weighted_assignment_accuracy(
    nodes: Sequence[ClassifierNode],
    labels: np.ndarray,
) -> float:
    """Fraction of value weight assigned to the "right" collection.

    Thin alias for :func:`repro.analysis.assignment.mean_node_accuracy`:
    collections are matched one-to-one to ground-truth classes via
    provenance-weighted Hungarian assignment, and weight landing anywhere
    else counts as incorrect (penalising over-fragmentation).
    """
    from repro.analysis.assignment import mean_node_accuracy

    return mean_node_accuracy(nodes, labels)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def run_topology_ablation(scale: Scale = PAPER, seed: int = 11) -> list[AblationRow]:
    """Rounds-to-convergence of the GM algorithm across topology shapes.

    Sparse topologies mix at random-walk speed (rounds grow roughly with
    the square of the diameter), so the network is capped at 36 nodes to
    keep the sweep bounded; the comparison is *between topologies at
    equal n*.
    """
    n = min(scale.n_nodes, 36)
    grid_side = int(np.sqrt(n))
    graphs = {
        "complete": topology.complete(n),
        "ring": topology.ring(n),
        "grid": topology.grid(grid_side, (n + grid_side - 1) // grid_side),
        "geometric": topology.random_geometric(n, seed=seed),
        "small_world": topology.watts_strogatz(n, k=4, rewire=0.2, seed=seed),
    }
    values, _ = _two_cluster_values(n, seed)
    rows = []
    for name, graph in graphs.items():
        graph_n = graph.number_of_nodes()
        graph_values = values[:graph_n]
        scheme = GaussianMixtureScheme(seed=seed)
        run_scale = scale.with_overrides(
            n_nodes=graph_n, max_rounds=max(scale.max_rounds, 60 * graph_n)
        )
        engine, nodes, rounds = run_until_convergence(
            graph_values, scheme, k=2, scale=run_scale, seed=seed, graph=graph
        )
        rows.append(
            AblationRow(
                label=name,
                metrics={
                    "n": float(graph_n),
                    "rounds": float(rounds),
                    "messages": float(engine.metrics.messages_sent),
                    "disagreement": disagreement(nodes, scheme),
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# Gossip variant
# ----------------------------------------------------------------------
def run_gossip_variant_ablation(scale: Scale = PAPER, seed: int = 12) -> list[AblationRow]:
    """push vs pull vs push-pull on the complete graph."""
    n = min(scale.n_nodes, 200)
    values, _ = _two_cluster_values(n, seed)
    rows = []
    for variant in ("push", "pull", "pushpull"):
        scheme = GaussianMixtureScheme(seed=seed)
        run_scale = scale.with_overrides(n_nodes=n)
        engine, nodes, rounds = run_until_convergence(
            values, scheme, k=2, scale=run_scale, seed=seed,
            graph=topology.complete(n), variant=variant,
        )
        rows.append(
            AblationRow(
                label=variant,
                metrics={
                    "rounds": float(rounds),
                    "messages": float(engine.metrics.messages_sent),
                    "disagreement": disagreement(nodes, scheme),
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# k bound
# ----------------------------------------------------------------------
def run_k_ablation(
    scale: Scale = PAPER, seed: int = 13, ks: Sequence[int] = (3, 5, 7, 10)
) -> list[AblationRow]:
    """Compression bound k versus fence-fire estimate quality."""
    n = min(scale.n_nodes, 300)
    values, _ = fence_fire_values(n, seed=seed)
    source = fence_fire_mixture()
    rows = []
    for k in ks:
        scheme = GaussianMixtureScheme(seed=seed)
        run_scale = scale.with_overrides(n_nodes=n)
        _, nodes, rounds = run_until_convergence(
            values, scheme, k=k, scale=run_scale, seed=seed
        )
        recovered = classification_to_gmm(nodes[0].classification)
        rows.append(
            AblationRow(
                label=f"k={k}",
                metrics={
                    "k": float(k),
                    "rounds": float(rounds),
                    "collections": float(recovered.n_components),
                    "loglik_per_value": recovered.log_likelihood(values) / n,
                    "loglik_source": source.log_likelihood(values) / n,
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# Quantum q
# ----------------------------------------------------------------------
def run_quantum_ablation(
    scale: Scale = PAPER,
    seed: int = 14,
    quanta: Sequence[int] = (4, 16, 256, 1 << 20),
) -> list[AblationRow]:
    """Weight-lattice resolution versus weight fidelity.

    With a coarse lattice (quanta_per_unit small, i.e. q large) the split
    rule rounds aggressively and relative weights wander; the paper's
    assumption ``q << 1/n`` corresponds to the finest setting.
    """
    n = min(scale.n_nodes, 128)
    values, _ = _two_cluster_values(n, seed)
    true_balance = 0.5
    rows = []
    for quanta_per_unit in quanta:
        scheme = GaussianMixtureScheme(seed=seed)
        from repro.protocols.classification import build_classification_network

        engine, nodes = build_classification_network(
            values,
            scheme,
            k=2,
            graph=topology.complete(n),
            seed=seed,
            quantization=Quantization(quanta_per_unit),
        )
        engine.run(scale.max_rounds)
        balance_errors = []
        for node in nodes:
            relative = node.classification.relative_weights()
            heaviest = float(np.max(relative))
            balance_errors.append(abs(heaviest - true_balance))
        rows.append(
            AblationRow(
                label=f"1/q={quanta_per_unit}",
                metrics={
                    "quanta_per_unit": float(quanta_per_unit),
                    "avg_balance_error": float(np.mean(balance_errors)),
                    "total_quanta_conserved": float(
                        sum(node.total_quanta for node in nodes)
                        == n * quanta_per_unit
                    ),
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# Scheme comparison
# ----------------------------------------------------------------------
def run_scheme_ablation(scale: Scale = PAPER, seed: int = 15) -> list[AblationRow]:
    """Centroids vs Gaussians vs histograms on anisotropic 1-D data.

    Figure 1's situation at network scale: a tight cluster at 0
    (sigma 0.3) and a wide one at 4 (sigma 2.0).  The optimal boundary
    sits near the tight cluster; the centroid rule puts it at the
    midpoint, swallowing part of the wide cluster's near tail.  Accuracy
    is measured as correctly-assigned value weight via provenance.
    """
    n = min(scale.n_nodes, 200)
    rng = np.random.default_rng(seed)
    half = n // 2
    tight = rng.normal(0.0, 0.3, size=half)
    wide = rng.normal(4.0, 2.0, size=n - half)
    values = np.concatenate([tight, wide])[:, None]
    labels = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])

    schemes: list[tuple[str, SummaryScheme]] = [
        ("centroid", CentroidScheme()),
        ("gaussian_mixture", GaussianMixtureScheme(seed=seed)),
        ("histogram", HistogramScheme(low=-4.0, high=12.0, bins=48)),
    ]
    rows = []
    for name, scheme in schemes:
        run_scale = scale.with_overrides(n_nodes=n)
        _, nodes, rounds = run_until_convergence(
            values, scheme, k=2, scale=run_scale, seed=seed, track_aux=True
        )
        accuracy = weighted_assignment_accuracy(nodes, labels)
        rows.append(
            AblationRow(
                label=name,
                metrics={
                    "rounds": float(rounds),
                    "weight_accuracy": accuracy,
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# Centralised gap
# ----------------------------------------------------------------------
def run_centralized_gap(scale: Scale = PAPER, seed: int = 16) -> list[AblationRow]:
    """Distributed GM versus centralised EM and k-means on the same data."""
    n = min(scale.n_nodes, 400)
    values, _ = fence_fire_values(n, seed=seed)
    k = 3
    rng = np.random.default_rng(seed)

    run_scale = scale.with_overrides(n_nodes=n)
    _, nodes, rounds = run_until_convergence(
        values, GaussianMixtureScheme(seed=seed), k=7, scale=run_scale, seed=seed
    )
    distributed = classification_to_gmm(nodes[0].classification)

    centralized_em = fit_gmm_em(values, k, rng).model

    clustering = weighted_kmeans(values, k, rng)
    km_weights = np.array(
        [np.sum(clustering.labels == j) for j in range(k)], dtype=float
    )
    km_covs = np.stack(
        [
            regularize_covariance(
                np.cov(values[clustering.labels == j].T)
                if np.sum(clustering.labels == j) > 1
                else np.eye(values.shape[1])
            )
            for j in range(k)
        ]
    )
    centralized_km = GaussianMixtureModel(km_weights, clustering.centroids, km_covs)

    return [
        AblationRow(
            "distributed_gm",
            {"loglik_per_value": distributed.log_likelihood(values) / n, "rounds": float(rounds)},
        ),
        AblationRow(
            "centralized_em",
            {"loglik_per_value": centralized_em.log_likelihood(values) / n, "rounds": 0.0},
        ),
        AblationRow(
            "centralized_kmeans",
            {"loglik_per_value": centralized_km.log_likelihood(values) / n, "rounds": 0.0},
        ),
    ]
