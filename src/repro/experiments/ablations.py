"""Ablation experiments for the design choices the paper calls out.

Each function regenerates one ablation series:

- :func:`run_topology_ablation` — Section 6 claims convergence on *any*
  connected topology; measure how topology shape affects speed.
- :func:`run_gossip_variant_ablation` — Section 4.1's push / pull /
  push-pull communication patterns.
- :func:`run_k_ablation` — the compression bound ``k`` versus estimate
  quality on the fence-fire workload.
- :func:`run_quantum_ablation` — the weight quantum ``q``: the paper
  assumes ``q << 1/n``; coarse lattices should visibly distort weights.
- :func:`run_scheme_ablation` — centroids versus Gaussians versus
  histograms on anisotropic data (Figure 1's claim, at network scale).
- :func:`run_centralized_gap` — the distributed GM estimate versus
  centralised EM and k-means on identical data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.convergence import disagreement
from repro.core.node import ClassifierNode
from repro.core.scheme import SummaryScheme
from repro.core.weights import Quantization
from repro.data.generators import fence_fire_mixture, fence_fire_values
from repro.experiments.common import Scale, PAPER, run_experiment_sweep, run_until_convergence
from repro.ml.em import fit_gmm_em
from repro.ml.gmm import GaussianMixtureModel
from repro.ml.kmeans import weighted_kmeans
from repro.ml.linalg import regularize_covariance
from repro.network import topology
from repro.schemes.centroid import CentroidScheme
from repro.schemes.gaussian import classification_to_gmm
from repro.schemes.gm import GaussianMixtureScheme
from repro.schemes.histogram import HistogramScheme
from repro.sweep import SweepSpec

__all__ = [
    "AblationRow",
    "ablation_cell",
    "run_topology_ablation",
    "run_gossip_variant_ablation",
    "run_k_ablation",
    "run_quantum_ablation",
    "run_scheme_ablation",
    "run_centralized_gap",
    "weighted_assignment_accuracy",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome: a label plus named measurements."""

    label: str
    metrics: dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


def _two_cluster_values(n: int, seed: int, separation: float = 8.0) -> tuple[np.ndarray, np.ndarray]:
    """Balanced 2-cluster R^2 data with ground-truth labels."""
    rng = np.random.default_rng(seed)
    half = n // 2
    a = rng.normal([0.0, 0.0], 0.6, size=(half, 2))
    b = rng.normal([separation, separation], 0.6, size=(n - half, 2))
    values = np.vstack([a, b])
    labels = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])
    return values, labels


def weighted_assignment_accuracy(
    nodes: Sequence[ClassifierNode],
    labels: np.ndarray,
) -> float:
    """Fraction of value weight assigned to the "right" collection.

    Thin alias for :func:`repro.analysis.assignment.mean_node_accuracy`:
    collections are matched one-to-one to ground-truth classes via
    provenance-weighted Hungarian assignment, and weight landing anywhere
    else counts as incorrect (penalising over-fragmentation).
    """
    from repro.analysis.assignment import mean_node_accuracy

    return mean_node_accuracy(nodes, labels)


# ----------------------------------------------------------------------
# The sweep cell behind every grid-shaped ablation
# ----------------------------------------------------------------------
_TOPOLOGY_NAMES = ("complete", "ring", "grid", "geometric", "small_world")


def _ablation_graph(name: str, n: int, seed: int):
    """The topology ablation's graphs, rebuilt from parameters alone."""
    grid_side = int(np.sqrt(n))
    if name == "complete":
        return topology.complete(n)
    if name == "ring":
        return topology.ring(n)
    if name == "grid":
        return topology.grid(grid_side, (n + grid_side - 1) // grid_side)
    if name == "geometric":
        return topology.random_geometric(n, seed=seed)
    if name == "small_world":
        return topology.watts_strogatz(n, k=4, rewire=0.2, seed=seed)
    raise ValueError(f"unknown ablation topology {name!r}")


def ablation_cell(params: dict) -> dict:
    """One grid-shaped ablation configuration as a sweep cell.

    ``mode`` selects the series (``topology`` / ``variant`` / ``k`` /
    ``quantum`` / ``scheme``); the run scale travels as a plain dict so
    the cell is self-contained in a pool worker.
    """
    mode = str(params["mode"])
    scale = Scale.from_dict(params["scale"])
    seed = int(params["seed"])
    n = int(params["n"])

    if mode == "topology":
        graph = _ablation_graph(str(params["topology"]), n, seed)
        graph_n = graph.number_of_nodes()
        values, _ = _two_cluster_values(n, seed)
        scheme = GaussianMixtureScheme(seed=seed)
        run_scale = scale.with_overrides(
            n_nodes=graph_n, max_rounds=max(scale.max_rounds, 60 * graph_n)
        )
        engine, nodes, rounds = run_until_convergence(
            values[:graph_n], scheme, k=2, scale=run_scale, seed=seed, graph=graph
        )
        return {
            "n": graph_n,
            "rounds": rounds,
            "messages": engine.metrics.messages_sent,
            "disagreement": float(disagreement(nodes, scheme)),
        }

    if mode == "variant":
        values, _ = _two_cluster_values(n, seed)
        scheme = GaussianMixtureScheme(seed=seed)
        engine, nodes, rounds = run_until_convergence(
            values, scheme, k=2, scale=scale.with_overrides(n_nodes=n), seed=seed,
            graph=topology.complete(n), variant=str(params["variant"]),
        )
        return {
            "rounds": rounds,
            "messages": engine.metrics.messages_sent,
            "disagreement": float(disagreement(nodes, scheme)),
        }

    if mode == "k":
        values, _ = fence_fire_values(n, seed=seed)
        source = fence_fire_mixture()
        scheme = GaussianMixtureScheme(seed=seed)
        _, nodes, rounds = run_until_convergence(
            values, scheme, k=int(params["k"]), scale=scale.with_overrides(n_nodes=n), seed=seed
        )
        recovered = classification_to_gmm(nodes[0].classification)
        return {
            "rounds": rounds,
            "collections": recovered.n_components,
            "loglik_per_value": float(recovered.log_likelihood(values) / n),
            "loglik_source": float(source.log_likelihood(values) / n),
        }

    if mode == "quantum":
        quanta_per_unit = int(params["quanta_per_unit"])
        values, _ = _two_cluster_values(n, seed)
        from repro.protocols.classification import build_classification_network

        engine, nodes = build_classification_network(
            values,
            GaussianMixtureScheme(seed=seed),
            k=2,
            graph=topology.complete(n),
            seed=seed,
            quantization=Quantization(quanta_per_unit),
            engine=scale.engine,
        )
        engine.run(scale.max_rounds)
        true_balance = 0.5
        balance_errors = []
        for node in nodes:
            relative = node.classification.relative_weights()
            balance_errors.append(abs(float(np.max(relative)) - true_balance))
        return {
            "avg_balance_error": float(np.mean(balance_errors)),
            "total_quanta_conserved": float(
                sum(node.total_quanta for node in nodes) == n * quanta_per_unit
            ),
        }

    if mode == "scheme":
        rng = np.random.default_rng(seed)
        half = n // 2
        tight = rng.normal(0.0, 0.3, size=half)
        wide = rng.normal(4.0, 2.0, size=n - half)
        values = np.concatenate([tight, wide])[:, None]
        labels = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])
        scheme_name = str(params["scheme"])
        scheme: SummaryScheme
        if scheme_name == "centroid":
            scheme = CentroidScheme()
        elif scheme_name == "gaussian_mixture":
            scheme = GaussianMixtureScheme(seed=seed)
        elif scheme_name == "histogram":
            scheme = HistogramScheme(low=-4.0, high=12.0, bins=48)
        else:
            raise ValueError(f"unknown ablation scheme {scheme_name!r}")
        _, nodes, rounds = run_until_convergence(
            values, scheme, k=2, scale=scale.with_overrides(n_nodes=n), seed=seed, track_aux=True
        )
        return {
            "rounds": rounds,
            "weight_accuracy": float(weighted_assignment_accuracy(nodes, labels)),
        }

    raise ValueError(f"unknown ablation cell mode {mode!r}")


def _ablation_sweep(name: str, cells: list[dict], scale: Scale, seed: int) -> dict:
    spec = SweepSpec(
        name=name,
        runner="repro.experiments.ablations:ablation_cell",
        base_seed=seed,
        cells=cells,
    )
    return run_experiment_sweep(spec, scale)


def _cell(scale: Scale, seed: int, n: int, mode: str, label: str, **extra) -> dict:
    return {
        "label": label,
        "mode": mode,
        "n": n,
        "seed": seed,
        "scale": scale.as_dict(),
        **extra,
    }


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def run_topology_ablation(scale: Scale = PAPER, seed: int = 11) -> list[AblationRow]:
    """Rounds-to-convergence of the GM algorithm across topology shapes.

    Sparse topologies mix at random-walk speed (rounds grow roughly with
    the square of the diameter), so the network is capped at 36 nodes to
    keep the sweep bounded; the comparison is *between topologies at
    equal n*.
    """
    n = min(scale.n_nodes, 36)
    cells = [
        _cell(scale, seed, n, "topology", label=name, topology=name)
        for name in _TOPOLOGY_NAMES
    ]
    results = _ablation_sweep("ablation-topology", cells, scale, seed)
    return [
        AblationRow(
            label=name,
            metrics={
                "n": float(results[name]["n"]),
                "rounds": float(results[name]["rounds"]),
                "messages": float(results[name]["messages"]),
                "disagreement": results[name]["disagreement"],
            },
        )
        for name in _TOPOLOGY_NAMES
    ]


# ----------------------------------------------------------------------
# Gossip variant
# ----------------------------------------------------------------------
def run_gossip_variant_ablation(scale: Scale = PAPER, seed: int = 12) -> list[AblationRow]:
    """push vs pull vs push-pull on the complete graph."""
    n = min(scale.n_nodes, 200)
    variants = ("push", "pull", "pushpull")
    cells = [
        _cell(scale, seed, n, "variant", label=variant, variant=variant)
        for variant in variants
    ]
    results = _ablation_sweep("ablation-gossip-variant", cells, scale, seed)
    return [
        AblationRow(
            label=variant,
            metrics={
                "rounds": float(results[variant]["rounds"]),
                "messages": float(results[variant]["messages"]),
                "disagreement": results[variant]["disagreement"],
            },
        )
        for variant in variants
    ]


# ----------------------------------------------------------------------
# k bound
# ----------------------------------------------------------------------
def run_k_ablation(
    scale: Scale = PAPER, seed: int = 13, ks: Sequence[int] = (3, 5, 7, 10)
) -> list[AblationRow]:
    """Compression bound k versus fence-fire estimate quality."""
    n = min(scale.n_nodes, 300)
    labels = [f"k={k}" for k in ks]
    cells = [
        _cell(scale, seed, n, "k", label=label, k=k) for label, k in zip(labels, ks)
    ]
    results = _ablation_sweep("ablation-k", cells, scale, seed)
    return [
        AblationRow(
            label=label,
            metrics={
                "k": float(k),
                "rounds": float(results[label]["rounds"]),
                "collections": float(results[label]["collections"]),
                "loglik_per_value": results[label]["loglik_per_value"],
                "loglik_source": results[label]["loglik_source"],
            },
        )
        for label, k in zip(labels, ks)
    ]


# ----------------------------------------------------------------------
# Quantum q
# ----------------------------------------------------------------------
def run_quantum_ablation(
    scale: Scale = PAPER,
    seed: int = 14,
    quanta: Sequence[int] = (4, 16, 256, 1 << 20),
) -> list[AblationRow]:
    """Weight-lattice resolution versus weight fidelity.

    With a coarse lattice (quanta_per_unit small, i.e. q large) the split
    rule rounds aggressively and relative weights wander; the paper's
    assumption ``q << 1/n`` corresponds to the finest setting.
    """
    n = min(scale.n_nodes, 128)
    labels = [f"1/q={quanta_per_unit}" for quanta_per_unit in quanta]
    cells = [
        _cell(scale, seed, n, "quantum", label=label, quanta_per_unit=quanta_per_unit)
        for label, quanta_per_unit in zip(labels, quanta)
    ]
    results = _ablation_sweep("ablation-quantum", cells, scale, seed)
    return [
        AblationRow(
            label=label,
            metrics={
                "quanta_per_unit": float(quanta_per_unit),
                "avg_balance_error": results[label]["avg_balance_error"],
                "total_quanta_conserved": results[label]["total_quanta_conserved"],
            },
        )
        for label, quanta_per_unit in zip(labels, quanta)
    ]


# ----------------------------------------------------------------------
# Scheme comparison
# ----------------------------------------------------------------------
def run_scheme_ablation(scale: Scale = PAPER, seed: int = 15) -> list[AblationRow]:
    """Centroids vs Gaussians vs histograms on anisotropic 1-D data.

    Figure 1's situation at network scale: a tight cluster at 0
    (sigma 0.3) and a wide one at 4 (sigma 2.0).  The optimal boundary
    sits near the tight cluster; the centroid rule puts it at the
    midpoint, swallowing part of the wide cluster's near tail.  Accuracy
    is measured as correctly-assigned value weight via provenance.
    """
    n = min(scale.n_nodes, 200)
    scheme_names = ("centroid", "gaussian_mixture", "histogram")
    cells = [
        _cell(scale, seed, n, "scheme", label=name, scheme=name) for name in scheme_names
    ]
    results = _ablation_sweep("ablation-scheme", cells, scale, seed)
    return [
        AblationRow(
            label=name,
            metrics={
                "rounds": float(results[name]["rounds"]),
                "weight_accuracy": results[name]["weight_accuracy"],
            },
        )
        for name in scheme_names
    ]


# ----------------------------------------------------------------------
# Centralised gap
# ----------------------------------------------------------------------
def run_centralized_gap(scale: Scale = PAPER, seed: int = 16) -> list[AblationRow]:
    """Distributed GM versus centralised EM and k-means on the same data."""
    n = min(scale.n_nodes, 400)
    values, _ = fence_fire_values(n, seed=seed)
    k = 3
    rng = np.random.default_rng(seed)

    run_scale = scale.with_overrides(n_nodes=n)
    _, nodes, rounds = run_until_convergence(
        values, GaussianMixtureScheme(seed=seed), k=7, scale=run_scale, seed=seed
    )
    distributed = classification_to_gmm(nodes[0].classification)

    centralized_em = fit_gmm_em(values, k, rng).model

    clustering = weighted_kmeans(values, k, rng)
    km_weights = np.array(
        [np.sum(clustering.labels == j) for j in range(k)], dtype=float
    )
    km_covs = np.stack(
        [
            regularize_covariance(
                np.cov(values[clustering.labels == j].T)
                if np.sum(clustering.labels == j) > 1
                else np.eye(values.shape[1])
            )
            for j in range(k)
        ]
    )
    centralized_km = GaussianMixtureModel(km_weights, clustering.centroids, km_covs)

    return [
        AblationRow(
            "distributed_gm",
            {"loglik_per_value": distributed.log_likelihood(values) / n, "rounds": float(rounds)},
        ),
        AblationRow(
            "centralized_em",
            {"loglik_per_value": centralized_em.log_likelihood(values) / n, "rounds": 0.0},
        ),
        AblationRow(
            "centralized_kmeans",
            {"loglik_per_value": centralized_km.log_likelihood(values) / n, "rounds": 0.0},
        ),
    ]
