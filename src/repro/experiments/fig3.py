"""Figure 3 — robust averaging: the effect of outlier separation.

Section 5.3.2's sweep: 950 values from N(0, I), 50 outliers from
N((0, delta), 0.1 I), with delta from 0 to 25.  For each delta the GM
algorithm runs with ``k = 2`` ("hopefully one collection for good values
and one for outliers") until convergence, and three series are reported:

- ``missed_outliers_pct`` — weight ratio of density-defined outliers
  (density under N(0, I) below f_min = 5e-5) wrongly assigned to the good
  collection, measured through the auxiliary provenance vectors;
- ``robust_error`` — average over nodes of the distance between the good
  collection's mean and the true mean (0, 0);
- ``regular_error`` — the same error for plain push-sum averaging, which
  cannot remove outliers.

Expected shape (the paper's Figure 3b): the regular error grows linearly
in delta (5% outlier mass drags the mean by ~0.05 delta); the miss rate
collapses once the collections separate (around delta ~ 5); and the
robust error stays small throughout, dropping to near the no-outlier
noise floor for large delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.accuracy import average_error
from repro.analysis.outliers import F_MIN, missed_outlier_fraction, robust_mean
from repro.data.generators import OutlierScenario, outlier_scenario
from repro.experiments.common import Scale, PAPER, run_until_convergence
from repro.network.topology import complete
from repro.protocols.push_sum import build_push_sum_network
from repro.schemes.gm import GaussianMixtureScheme

__all__ = ["Fig3Row", "Fig3Result", "run_fig3", "run_fig3_row"]


@dataclass(frozen=True)
class Fig3Row:
    """One delta's measurements (one x position in Figure 3b)."""

    delta: float
    missed_outliers_pct: float
    robust_error: float
    regular_error: float
    rounds: int


@dataclass(frozen=True)
class Fig3Result:
    """The full regenerated Figure 3b series."""

    rows: tuple[Fig3Row, ...]
    n_nodes: int
    f_min: float

    def column(self, name: str) -> list[float]:
        return [getattr(row, name) for row in self.rows]


def _scenario_for(scale: Scale, delta: float, seed: int) -> OutlierScenario:
    """The paper's 95%/5% split, rescaled to the preset's network size."""
    n_outliers = max(1, round(scale.n_nodes * 0.05))
    return outlier_scenario(
        delta, n_good=scale.n_nodes - n_outliers, n_outliers=n_outliers, seed=seed
    )


def run_fig3_row(
    delta: float,
    scale: Scale = PAPER,
    seed: int = 3,
    rounds_cap: int | None = None,
) -> Fig3Row:
    """Run one delta of the sweep (GM with aux tracking + push-sum)."""
    scenario = _scenario_for(scale, delta, seed)
    scheme = GaussianMixtureScheme(seed=seed)
    run_scale = scale if rounds_cap is None else scale.with_overrides(max_rounds=rounds_cap)
    _, nodes, rounds = run_until_convergence(
        scenario.values, scheme, k=2, scale=run_scale, seed=seed, track_aux=True
    )
    outlier_indices = scenario.density_outlier_indices(F_MIN)
    missed = float(
        np.mean(
            [
                missed_outlier_fraction(node.classification, outlier_indices)
                for node in nodes
            ]
        )
    )
    robust = average_error(
        (robust_mean(node.classification) for node in nodes), scenario.true_mean
    )

    push_engine, push_nodes = build_push_sum_network(
        scenario.values, complete(scenario.n), seed=seed, engine=scale.engine
    )
    push_engine.run(rounds)
    regular = average_error((node.estimate for node in push_nodes), scenario.true_mean)

    return Fig3Row(
        delta=delta,
        missed_outliers_pct=100.0 * missed,
        robust_error=robust,
        regular_error=regular,
        rounds=rounds,
    )


def run_fig3(
    scale: Scale = PAPER,
    seed: int = 3,
    deltas: Sequence[float] | None = None,
) -> Fig3Result:
    """Run the whole delta sweep; ``deltas`` defaults to the preset's."""
    sweep = tuple(deltas) if deltas is not None else scale.deltas
    rows = tuple(run_fig3_row(delta, scale=scale, seed=seed) for delta in sweep)
    return Fig3Result(rows=rows, n_nodes=scale.n_nodes, f_min=F_MIN)
